package ground

import (
	"slices"
	"sort"
)

// Conflict components.
//
// Constraints and rules only connect atoms that actually co-occur in a
// ground clause, so the clause graph of a real utkg splits into many
// small, mutually independent conflict components: the MAP objective
// decomposes exactly across them, and a fact update can only affect the
// component(s) it touches. The component index below maintains that
// partition incrementally on the persistent ClauseSet — union-find merge
// when Add connects atoms, generation bumps plus lazy split detection
// when RetractFacts tombstones clauses — and the per-component solvers
// in internal/mln and internal/psl consume it through Components.
//
// Every component carries a generation: a counter bumped whenever
// anything that can change the component's subproblem happens (a clause
// added, merged or tombstoned inside it, or an atom's evidence state
// touched). A (Key, Gen, Atoms) triple therefore identifies an unchanged
// subproblem, which is what the incremental solve caches component
// solutions under.

// Component is one conflict component of the ground network: a maximal
// set of live atoms connected by live clauses (atoms appearing in no
// clause form singleton components).
type Component struct {
	// Key is the smallest atom id in the component — a stable identity
	// for solution caches (any membership change bumps Gen).
	Key AtomID
	// Gen is the component's generation; equal (Key, Gen, Atoms) means
	// the component's subproblem is unchanged since it was last seen.
	Gen uint64
	// Atoms lists the component's live atoms in canonical solve order
	// (the order Components was given).
	Atoms []AtomID
}

// ComponentStats summarises a component-decomposed solve for
// Resolution.Stats, the CLI and the server API.
type ComponentStats struct {
	// Count is the number of conflict components solved or reused.
	Count int
	// Largest is the atom count of the biggest component.
	Largest int
	// SizeHistogram buckets components by atom count.
	SizeHistogram map[string]int
	// Solved counts components actually solved this call (dirty), Reused
	// counts cache hits whose previous solution was kept.
	Solved int
	Reused int
	// Fallbacks counts components where the exact engine exhausted its
	// node limit and the orchestrator fell back to local search.
	Fallbacks int
	// Engines tallies components per engine ("exact", "local",
	// "exact→local", "admm", "cached").
	Engines map[string]int
}

// SizeBucket names the histogram bucket for a component of n atoms.
func SizeBucket(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n <= 4:
		return "2-4"
	case n <= 16:
		return "5-16"
	case n <= 64:
		return "17-64"
	case n <= 256:
		return "65-256"
	default:
		return "257+"
	}
}

// Observe accounts one component of n atoms into the stats.
func (s *ComponentStats) Observe(n int) {
	s.Count++
	if n > s.Largest {
		s.Largest = n
	}
	if s.SizeHistogram == nil {
		s.SizeHistogram = make(map[string]int)
	}
	s.SizeHistogram[SizeBucket(n)]++
}

// Engine accounts one component solved (or reused) by the named engine.
func (s *ComponentStats) Engine(name string) {
	if s.Engines == nil {
		s.Engines = make(map[string]int)
	}
	s.Engines[name]++
}

// componentIndex is the incrementally maintained union-find over atoms.
// All mutation happens at sequential points (clause-set merges, the
// incremental engine's sync), matching the two-phase discipline of the
// grounder; Components resolves pending splits lazily.
// Per-node state is 8 bytes — a 4-byte parent link and a 4-byte
// generation — so the index stays a rounding error next to the clauses
// it partitions even at millions of atoms. Generations are 32-bit: a
// wrap needs 2^32 component mutations in one session, and the solution
// caches keyed by (Key, Gen) also compare full membership, so an
// aliased generation can at worst reuse a cache entry for a component
// with identical atoms — which the validation against the assignment
// catches.
type componentIndex struct {
	parent []AtomID
	// gen is meaningful at root atoms.
	gen []uint32
	// dirty marks roots whose component lost a clause since the last
	// Components call and may therefore have split.
	dirty   map[AtomID]bool
	nextGen uint32

	// changed, when tracking is on, accumulates every root whose
	// component was touched since the last drain — generation bumps,
	// merged-away roots, resplit pieces. The maintained solve plan
	// drains it to re-list only the components that moved.
	tracking bool
	changed  map[AtomID]bool

	// resplit scratch, reused across calls so the steady-state
	// single-fact plan path stays allocation-free.
	rsAtoms  []AtomID
	rsSorted []AtomID
	rsLocal  map[AtomID]AtomID
	rsSeen   map[AtomID]bool
}

func newComponentIndex() *componentIndex {
	return &componentIndex{dirty: make(map[AtomID]bool)}
}

// note records a changed root for the maintained plan's drain.
func (ci *componentIndex) note(root AtomID) {
	if ci.tracking {
		ci.changed[root] = true
	}
}

// ensure grows the index to cover atom a.
func (ci *componentIndex) ensure(a AtomID) {
	for len(ci.parent) <= int(a) {
		ci.parent = append(ci.parent, AtomID(len(ci.parent)))
		ci.gen = append(ci.gen, 0)
	}
}

func (ci *componentIndex) find(a AtomID) AtomID {
	ci.ensure(a)
	root := a
	for ci.parent[root] != root {
		root = ci.parent[root]
	}
	for ci.parent[a] != root {
		ci.parent[a], a = root, ci.parent[a]
	}
	return root
}

// bump assigns the root a fresh generation.
func (ci *componentIndex) bump(root AtomID) {
	ci.nextGen++
	ci.gen[root] = ci.nextGen
	ci.note(root)
}

// noteClause records that the literal atoms now co-occur in a live
// clause: their components merge and the merged component's generation
// advances. Also called for weight merges and slot revivals — any Add
// that changes clause content.
func (ci *componentIndex) noteClause(lits []Lit) {
	if len(lits) == 0 {
		return
	}
	root := ci.find(lits[0].Atom)
	for _, l := range lits[1:] {
		r := ci.find(l.Atom)
		if r == root {
			continue
		}
		// Union by id keeps the root deterministic.
		if r < root {
			root, r = r, root
		}
		if ci.dirty[r] {
			ci.dirty[root] = true
			delete(ci.dirty, r)
		}
		// The losing root's component is absorbed; log it so the
		// maintained plan retires (or re-lists) what it keyed.
		ci.note(r)
		ci.parent[r] = root
	}
	ci.bump(root)
}

// noteRemoval records that clauses mentioning atom a were tombstoned:
// the component may have split, so it is re-derived lazily at the next
// Components call.
func (ci *componentIndex) noteRemoval(a AtomID) {
	root := ci.find(a)
	ci.bump(root)
	ci.dirty[root] = true
}

// touch bumps the generation of a's component and schedules it for
// re-derivation — for evidence/confidence changes and atom revivals that
// alter the subproblem without touching any clause. Marking the
// component dirty also dissolves stale union links a revived atom may
// still hold from before its retraction: the lazy resplit regroups the
// component purely from live clauses.
func (ci *componentIndex) touch(a AtomID) {
	root := ci.find(a)
	ci.bump(root)
	ci.dirty[root] = true
}

// EnableComponentIndex switches on incremental conflict-component
// tracking (implies EnableAtomIndex, which lazy split detection needs),
// indexing already-present clauses.
func (cs *ClauseSet) EnableComponentIndex() {
	if cs.comps != nil {
		return
	}
	cs.EnableAtomIndex()
	cs.comps = newComponentIndex()
	cs.ForEach(func(c *Clause) bool {
		cs.comps.noteClause(c.Lits)
		return true
	})
}

// TouchAtom bumps the generation of the component containing atom a and
// schedules it for lazy re-derivation. The incremental grounder calls it
// whenever an atom's evidence state or confidence changes (including
// retraction and revival), so component solution caches see the
// subproblem change even though no clause did. A no-op without the
// component index.
func (cs *ClauseSet) TouchAtom(a AtomID) {
	if cs.comps != nil {
		cs.comps.touch(a)
	}
}

// EnableChangeLog switches on changed-root tracking for the maintained
// solve plan: from now on every component mutation (merge, removal,
// touch, resplit) records the affected roots, and DrainChangedRoots
// hands them to the planner. Requires EnableComponentIndex.
func (cs *ClauseSet) EnableChangeLog() {
	if cs.comps == nil || cs.comps.tracking {
		return
	}
	cs.comps.tracking = true
	cs.comps.changed = make(map[AtomID]bool)
}

// DrainChangedRoots invokes fn for every root logged since the last
// drain (in no particular order — callers re-sort by canonical
// position) and clears the log. Returns the number of roots drained.
func (cs *ClauseSet) DrainChangedRoots(fn func(AtomID)) int {
	ci := cs.comps
	if ci == nil || !ci.tracking {
		return 0
	}
	n := len(ci.changed)
	for r := range ci.changed {
		fn(r)
		delete(ci.changed, r)
	}
	return n
}

// ResolveSplits resolves pending component splits against the given
// candidate atoms — which must include every live atom of every dirty
// component (the maintained planner's candidate set, or the full
// canonical order). The resulting union-find state, generations and
// change log are identical to what a full Components call would leave.
// A no-op when nothing is dirty.
func (cs *ClauseSet) ResolveSplits(candidates []AtomID) {
	ci := cs.comps
	if ci == nil || len(ci.dirty) == 0 {
		return
	}
	cs.resplit(ci, candidates)
}

// HasPendingSplits reports whether component removals since the last
// resolve left roots awaiting lazy re-derivation.
func (cs *ClauseSet) HasPendingSplits() bool {
	return cs.comps != nil && len(cs.comps.dirty) > 0
}

// Find returns the current component root of atom a (atoms in no clause
// are their own root). Requires EnableComponentIndex; pending splits
// must be resolved first for the answer to be final.
func (cs *ClauseSet) Find(a AtomID) AtomID { return cs.comps.find(a) }

// RootGen returns the generation of the component rooted at root.
func (cs *ClauseSet) RootGen(root AtomID) uint64 {
	cs.comps.ensure(root)
	return uint64(cs.comps.gen[root])
}

// HasComponentIndex reports whether EnableComponentIndex was called.
func (cs *ClauseSet) HasComponentIndex() bool { return cs.comps != nil }

// Components partitions the given live atoms (in canonical solve order)
// into conflict components: atoms are connected when they co-occur in a
// live clause; atoms in no clause are singletons. Components come back
// ordered by their first atom in the input order, each listing its atoms
// in input order.
//
// With EnableComponentIndex the partition is maintained incrementally
// and generations persist across calls — pending splits from clause
// removals are resolved here, lazily, by re-deriving only the dirty
// components from the atom index. Without it a transient partition is
// computed from the live clauses (all generations zero).
func (cs *ClauseSet) Components(order []AtomID) []Component {
	ci := cs.comps
	if ci == nil {
		ci = newComponentIndex()
		cs.ForEach(func(c *Clause) bool {
			// Transient index: union only, generations stay zero.
			if len(c.Lits) == 0 {
				return true
			}
			root := ci.find(c.Lits[0].Atom)
			for _, l := range c.Lits[1:] {
				r := ci.find(l.Atom)
				if r != root {
					if r < root {
						root, r = r, root
					}
					ci.parent[r] = root
				}
			}
			return true
		})
	} else if len(ci.dirty) > 0 {
		cs.resplit(ci, order)
	}

	byRoot := make(map[AtomID]int)
	var comps []Component
	for _, a := range order {
		root := ci.find(a)
		i, ok := byRoot[root]
		if !ok {
			i = len(comps)
			byRoot[root] = i
			comps = append(comps, Component{Key: a, Gen: uint64(ci.gen[root])})
		}
		c := &comps[i]
		if a < c.Key {
			c.Key = a
		}
		c.Atoms = append(c.Atoms, a)
	}
	return comps
}

// HasAtomIndex reports whether EnableAtomIndex was called — the
// prerequisite for ComponentClauses' index-driven gathering.
func (cs *ClauseSet) HasAtomIndex() bool { return cs.atomIndexed }

// ComponentClauses returns the live clauses of one conflict component in
// canonical order, remapped through local into the component's dense
// variable space (local must return the component-local variable of
// every component atom; values for other atoms are never requested).
// atoms must span the component, and EnableAtomIndex must have been
// called: the gather walks only the component's own clauses, so
// collecting the subproblems of the dirty components costs time
// proportional to those components — not the clause set.
//
// Local variable numbering follows the component's canonical atom order,
// so the comparator order here matches CanonicalClauses restricted to
// the component: per component, both produce the identical clause
// sequence, which is what keeps the incremental per-component solver
// inputs byte-identical to the cold path's. The returned slots give each
// clause's stable slot in cs, for keying warm-start state.
func (cs *ClauseSet) ComponentClauses(atoms []AtomID, local func(AtomID) int32) ([]Clause, []int32) {
	slots := cs.ComponentSlots(atoms)
	out := make([]Clause, len(slots))
	for k, at := range slots {
		c := &cs.clauses[at]
		mc := Clause{Lits: make([]Lit, len(c.Lits)), Weight: c.Weight, Rule: c.Rule}
		for i, l := range c.Lits {
			mc.Lits[i] = Lit{Atom: AtomID(local(l.Atom)), Neg: l.Neg}
		}
		sort.Slice(mc.Lits, func(i, j int) bool {
			if mc.Lits[i].Atom != mc.Lits[j].Atom {
				return mc.Lits[i].Atom < mc.Lits[j].Atom
			}
			return !mc.Lits[i].Neg && mc.Lits[j].Neg
		})
		out[k] = mc
	}
	perm := make([]int, len(out))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return canonicalClauseLess(&out[perm[i]], &out[perm[j]]) })
	sorted := make([]Clause, len(out))
	sortedSlots := make([]int32, len(out))
	for i, p := range perm {
		sorted[i] = out[p]
		sortedSlots[i] = slots[p]
	}
	return sorted, sortedSlots
}

// ComponentSlots gathers the live clause slots touching the given
// atoms, each once, in stable slot order — the component-restricted
// counterpart of a full ForEachSlot pass, for consumers (the repair
// read-out) that need grounding identity rather than a dense
// subproblem. Because a clause's atoms all belong to one conflict
// component, passing a component's atom set yields exactly its
// clauses, in the same relative order ForEachSlot would visit them —
// which is what keeps per-component read-outs byte-identical to
// whole-graph ones. Gather once and iterate with ForEachSlots as often
// as needed. EnableAtomIndex must have been called. Safe to call
// concurrently for disjoint components.
func (cs *ClauseSet) ComponentSlots(atoms []AtomID) []int32 {
	var slots []int32
	seen := make(map[int32]bool)
	for _, a := range atoms {
		for _, at := range cs.clausesOf(a) {
			if cs.dead != nil && cs.dead[at] {
				continue
			}
			if seen[at] {
				continue
			}
			seen[at] = true
			slots = append(slots, at)
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	return slots
}

// ForEachSlots invokes fn for the given clause slots in order, until fn
// returns false. The slots must be live (as returned by
// ComponentSlots); the clause must not be modified.
func (cs *ClauseSet) ForEachSlots(slots []int32, fn func(slot int32, c *Clause) bool) {
	for _, at := range slots {
		if !fn(at, &cs.clauses[at]) {
			return
		}
	}
}

// resplit re-derives the dirty components: their live atoms are
// re-grouped through the atom→clause index, detached pieces become new
// components with fresh generations. live must contain every live atom
// of every dirty component (the full canonical order always qualifies;
// the maintained plan passes the far smaller candidate set it tracked).
// Runs in time proportional to the candidates and their clauses, not
// the whole network, and reuses the index's scratch buffers so the
// steady-state single-fact path allocates nothing.
func (cs *ClauseSet) resplit(ci *componentIndex, live []AtomID) {
	atoms := ci.rsAtoms[:0]
	for _, a := range live {
		if ci.dirty[ci.find(a)] {
			atoms = append(atoms, a)
		}
	}
	// Local union-find over the dirty atoms only, rebuilt from the live
	// clauses that mention them (every clause of a dirty component only
	// mentions atoms of that component, so the local view is complete).
	if ci.rsLocal == nil {
		ci.rsLocal = make(map[AtomID]AtomID, len(atoms))
	} else {
		for k := range ci.rsLocal {
			delete(ci.rsLocal, k)
		}
	}
	local := ci.rsLocal
	for _, a := range atoms {
		local[a] = a
	}
	lfind := func(a AtomID) AtomID {
		r := a
		for local[r] != r {
			r = local[r]
		}
		for local[a] != r {
			local[a], a = r, local[a]
		}
		return r
	}
	for _, a := range atoms {
		for _, at := range cs.clausesOf(a) {
			if cs.dead != nil && cs.dead[at] {
				continue
			}
			for _, l := range cs.clauses[at].Lits {
				if l.Atom == a {
					continue
				}
				if _, ok := local[l.Atom]; !ok {
					continue // retracted partner: not in the live order
				}
				ra, rb := lfind(a), lfind(l.Atom)
				if ra != rb {
					if rb < ra {
						ra, rb = rb, ra
					}
					local[rb] = ra
				}
			}
		}
	}
	// Re-point the global structure at the new roots and assign fresh
	// generations, one per piece, in ascending atom order so the values
	// are deterministic.
	sorted := append(ci.rsSorted[:0], atoms...)
	slices.Sort(sorted)
	ci.rsSorted = sorted
	ci.rsAtoms = atoms
	if ci.rsSeen == nil {
		ci.rsSeen = make(map[AtomID]bool)
	} else {
		for k := range ci.rsSeen {
			delete(ci.rsSeen, k)
		}
	}
	for _, a := range sorted {
		r := lfind(a)
		ci.parent[a] = r
		if !ci.rsSeen[r] {
			ci.rsSeen[r] = true
			ci.parent[r] = r
			ci.bump(r)
		}
	}
	for k := range ci.dirty {
		delete(ci.dirty, k)
	}
}
