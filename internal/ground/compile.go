package ground

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/temporal"
)

// Compiled grounding. Three dictionaries are in play during a join: the
// main store's, the derived store's, and the atom table's private one.
// The compiled path elects the atom dictionary as the canonical binding
// space — frames bind atom codes, rule constants are resolved to atom
// codes once per phase, and store matches are translated through the
// code maps below instead of hashing N-triples strings per visited quad.

// codeMaps are bidirectional translation tables between store term codes
// and atom-table term codes. Code 0 (NoTerm) marks an unpaired entry:
// the term exists in one dictionary but not the other, so nothing on the
// other side can match it. Tables are append-only and synced at
// refreshViews — a sequential point — via watermarks, so workers read
// them lock-free during a phase.
type codeMaps struct {
	mainToAtom    []store.TermID // main-store code -> atom code
	derivedToAtom []store.TermID // derived-store code -> atom code
	atomToMain    []store.TermID // atom code -> main-store code
	atomToDerived []store.TermID // atom code -> derived-store code

	// Watermarks: codes below these are already synced. A pairing is
	// recorded by whichever dictionary interned the term later, and every
	// sync direction writes both tables, so no pairing is missed.
	mainDone, derivedDone, atomDone int
}

func growIDs(s []store.TermID, n int) []store.TermID {
	if len(s) >= n {
		return s
	}
	return append(s, make([]store.TermID, n-len(s))...)
}

// syncCodeMaps extends the translation tables to cover every term code
// assigned since the last sync. Must run at a sequential point, after
// refreshing the views it reads.
func (g *Grounder) syncCodeMaps() {
	mts := g.mainView.Terms()
	dts := g.derivedView.Terms()
	ad := g.atoms.dict
	na := ad.Len() + 1 // atom codes are 1..Len
	m := &g.maps
	m.mainToAtom = growIDs(m.mainToAtom, len(mts))
	m.derivedToAtom = growIDs(m.derivedToAtom, len(dts))
	m.atomToMain = growIDs(m.atomToMain, na)
	m.atomToDerived = growIDs(m.atomToDerived, na)
	for c := max(m.mainDone, 1); c < len(mts); c++ {
		if a, ok := ad.Lookup(mts[c]); ok {
			m.mainToAtom[c] = a
			m.atomToMain[a] = store.TermID(c)
		}
	}
	for c := max(m.derivedDone, 1); c < len(dts); c++ {
		if a, ok := ad.Lookup(dts[c]); ok {
			m.derivedToAtom[c] = a
			m.atomToDerived[a] = store.TermID(c)
		}
	}
	for a := max(m.atomDone, 1); a < na; a++ {
		t := ad.Decode(store.TermID(a))
		if c, ok := g.mainView.LookupTerm(t); ok {
			m.atomToMain[a] = c
			if int(c) < len(m.mainToAtom) {
				m.mainToAtom[c] = store.TermID(a)
			}
		}
		if c, ok := g.derivedView.LookupTerm(t); ok {
			m.atomToDerived[a] = c
			if int(c) < len(m.derivedToAtom) {
				m.derivedToAtom[c] = store.TermID(a)
			}
		}
	}
	m.mainDone, m.derivedDone, m.atomDone = len(mts), len(dts), na
}

// cterm is one compiled term position: a frame slot for variables, or a
// pre-resolved atom-dictionary code for constants (0 when the constant
// is not in the network — it then matches nothing interned).
type cterm struct {
	slot int32 // object-variable slot; -1 for constants
	code store.TermID
}

// cquad is one body atom lowered against the rule's slot map, stored in
// join order.
type cquad struct {
	bodyPos int // original body index; deltaMode is keyed by it
	s, p, o cterm
	tSlot   int32 // time-variable slot; -1 when the atom time is constant
	tConst  temporal.Interval
}

// chead is a compiled HeadAtom: codes for the fast already-interned
// lookup, constant terms kept for materialising pending fact keys.
type chead struct {
	s, p, o    cterm
	sT, pT, oT rdf.Term
	time       logic.TimeProgram
	// valid is false when a head object variable is not bound by the
	// body; every grounding then resolves to a miss, exactly like
	// QuadAtom.Resolve under a body-only binding.
	valid bool
}

// compiledRule is one rule lowered for a single grounding phase. The
// embedded constant codes are only valid while the atom dictionary is
// frozen, so rules are recompiled at each phase's sequential point.
type compiledRule struct {
	rule     *logic.Rule
	order    []int
	est      []float64
	sm       *logic.SlotMap
	quads    []cquad                // body atoms in join order
	conds    [][]logic.CompiledCond // scheduled by join depth
	head     chead                  // HeadAtom rules only
	headCond logic.CompiledCond     // HeadCond rules only
}

// decodeAtomCode and encodeAtomCode adapt the atom dictionary to the
// compiled-condition hooks. Read-only: compiled code never interns.
func (g *Grounder) decodeAtomCode(c uint32) rdf.Term {
	return g.atoms.dict.Decode(store.TermID(c))
}

func (g *Grounder) encodeAtomCode(t rdf.Term) (uint32, bool) {
	c, ok := g.atoms.dict.Lookup(t)
	return uint32(c), ok
}

// compileRule lowers a rule against the given join order: variables to
// dense slots, constants to atom codes, conditions to closures.
func (g *Grounder) compileRule(r *logic.Rule, order []int, est []float64) (*compiledRule, error) {
	sm := logic.BodySlots(r)
	cr := &compiledRule{rule: r, order: order, est: est, sm: sm}
	cobj := func(t logic.Term) cterm {
		if t.IsVar() {
			slot, _ := sm.ObjSlot(t.Var) // body variables always have slots
			return cterm{slot: int32(slot)}
		}
		code, _ := g.atoms.dict.Lookup(t.Const)
		return cterm{slot: -1, code: code}
	}
	cr.quads = make([]cquad, len(order))
	for d, idx := range order {
		a := r.Body[idx]
		cq := cquad{bodyPos: idx, s: cobj(a.S), p: cobj(a.P), o: cobj(a.O)}
		switch a.T.Kind {
		case logic.TimeVar:
			slot, _ := sm.TimeSlot(a.T.Var)
			cq.tSlot = int32(slot)
		case logic.TimeConst:
			cq.tSlot = -1
			cq.tConst = a.T.Const
		default:
			return nil, fmt.Errorf("ground: body atom %s: time expressions are only allowed in rule heads", a)
		}
		cr.quads[d] = cq
	}
	condAt, err := scheduleConds(r, order)
	if err != nil {
		return nil, err
	}
	cr.conds = make([][]logic.CompiledCond, len(order))
	for d, conds := range condAt {
		for _, c := range conds {
			cc, err := logic.CompileCondition(c, sm, g.decodeAtomCode, g.encodeAtomCode)
			if err != nil {
				return nil, fmt.Errorf("ground: rule %s: %w", r.Name, err)
			}
			cr.conds[d] = append(cr.conds[d], cc)
		}
	}
	switch r.Head.Kind {
	case logic.HeadAtom:
		h := &cr.head
		h.valid = true
		lower := func(t logic.Term, ct *cterm, konst *rdf.Term) {
			if t.IsVar() {
				slot, ok := sm.ObjSlot(t.Var)
				if !ok {
					h.valid = false
					return
				}
				*ct = cterm{slot: int32(slot)}
				return
			}
			code, _ := g.atoms.dict.Lookup(t.Const)
			*ct = cterm{slot: -1, code: code}
			*konst = t.Const
		}
		lower(r.Head.Atom.S, &h.s, &h.sT)
		lower(r.Head.Atom.P, &h.p, &h.pT)
		lower(r.Head.Atom.O, &h.o, &h.oT)
		h.time = logic.CompileTime(r.Head.Atom.T, sm)
	case logic.HeadCond:
		cc, err := logic.CompileCondition(r.Head.Cond, sm, g.decodeAtomCode, g.encodeAtomCode)
		if err != nil {
			return nil, fmt.Errorf("ground: rule %s head: %w", r.Name, err)
		}
		cr.headCond = cc
	}
	return cr, nil
}

// planSelective chooses a join order greedily by estimated candidate
// count from the live index cardinalities: at each step, pick the unused
// body atom expected to match the fewest facts given the variables bound
// so far, ties broken by body position. first >= 0 pins that body
// position to the front (the seminaive delta passes pin the delta atom).
// Estimates are per-store sums over the main and derived views; they are
// upper bounds (tombstones included), which is fine — the planner only
// compares them.
func (g *Grounder) planSelective(r *logic.Rule, first int) ([]int, []float64, error) {
	n := len(r.Body)
	if n == 0 {
		return nil, nil, fmt.Errorf("ground: rule %s has an empty body", r.Name)
	}
	mc := g.mainView.Cardinalities()
	dc := g.derivedView.Cardinalities()
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	est := make([]float64, 0, n)
	pick := func(i int, e float64) {
		used[i] = true
		order = append(order, i)
		est = append(est, e)
		for _, v := range r.Body[i].Vars(nil) {
			bound[v] = true
		}
	}
	if first >= 0 {
		pick(first, g.estimateAtom(r.Body[first], bound, mc, dc))
	}
	for len(order) < n {
		best, bestEst := -1, 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			e := g.estimateAtom(r.Body[i], bound, mc, dc)
			if best < 0 || e < bestEst {
				best, bestEst = i, e
			}
		}
		pick(best, bestEst)
	}
	return order, est, nil
}

// estimateAtom estimates how many stored facts a body atom matches given
// the already-bound variable set.
func (g *Grounder) estimateAtom(a logic.QuadAtom, bound map[string]bool, mc, dc store.IndexCardinalities) float64 {
	return estimateIn(g.mainView, a, bound, mc) + estimateIn(g.derivedView, a, bound, dc)
}

// estimateIn estimates one store's contribution: the shortest posting
// list over constant positions (exact, O(1) per lookup), the average
// posting length for positions bound by a join variable, the total fact
// count otherwise. A constant absent from the store's dictionary matches
// nothing there.
func estimateIn(v store.View, a logic.QuadAtom, bound map[string]bool, card store.IndexCardinalities) float64 {
	if card.Facts == 0 {
		return 0
	}
	est := float64(card.Facts)
	consider := func(t logic.Term, lenOf func(store.TermID) int, distinct int) bool {
		if !t.IsVar() {
			code, ok := v.LookupTerm(t.Const)
			if !ok {
				return false
			}
			if l := float64(lenOf(code)); l < est {
				est = l
			}
			return true
		}
		if bound[t.Var] && distinct > 0 {
			if avg := float64(card.Facts) / float64(distinct); avg < est {
				est = avg
			}
		}
		return true
	}
	if !consider(a.S, v.PostingLenS, card.DistinctS) {
		return 0
	}
	if !consider(a.P, v.PostingLenP, card.DistinctP) {
		return 0
	}
	if !consider(a.O, v.PostingLenO, card.DistinctO) {
		return 0
	}
	return est
}
