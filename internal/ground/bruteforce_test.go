package ground

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

// Property test: the join-based grounder must produce exactly the
// violated groundings a naive quadratic enumeration finds, for the
// paper's c2-style disjointness constraint over random stores.

func TestGroundC2MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")

	for trial := 0; trial < 120; trial++ {
		st := store.New()
		type rec struct {
			id   store.FactID
			subj string
			obj  string
			iv   temporal.Interval
		}
		var recs []rec
		n := 2 + rng.Intn(25)
		for i := 0; i < n; i++ {
			subj := fmt.Sprintf("p%d", rng.Intn(4))
			obj := fmt.Sprintf("club%d", rng.Intn(5))
			s := int64(rng.Intn(12))
			iv := temporal.Interval{Start: s, End: s + int64(rng.Intn(6))}
			id, err := st.Add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("coach"),
				Object:     rdf.NewIRI(obj),
				Interval:   iv,
				Confidence: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec{id, subj, obj, iv})
		}
		// Deduplicate recs by fact id (store merges duplicates).
		seen := map[store.FactID]bool{}
		var uniq []rec
		for _, r := range recs {
			if !seen[r.id] {
				seen[r.id] = true
				uniq = append(uniq, r)
			}
		}

		// Brute force: unordered pairs with same subject, distinct
		// objects, intersecting intervals.
		naive := map[string]bool{}
		for i := 0; i < len(uniq); i++ {
			for j := i + 1; j < len(uniq); j++ {
				a, b := uniq[i], uniq[j]
				if a.subj == b.subj && a.obj != b.obj && a.iv.Intersects(b.iv) {
					lo, hi := a.id, b.id
					if lo > hi {
						lo, hi = hi, lo
					}
					naive[fmt.Sprintf("%d-%d", lo, hi)] = true
				}
			}
		}

		g := New(st)
		cs, err := g.GroundProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, c := range cs.Clauses() {
			if len(c.Lits) != 2 || !c.Lits[0].Neg || !c.Lits[1].Neg {
				t.Fatalf("trial %d: unexpected clause shape %v", trial, c)
			}
			a := g.Atoms().Info(c.Lits[0].Atom).FactID
			b := g.Atoms().Info(c.Lits[1].Atom).FactID
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			got[fmt.Sprintf("%d-%d", lo, hi)] = true
		}

		if len(got) != len(naive) {
			t.Fatalf("trial %d: grounder found %d pairs, brute force %d", trial, len(got), len(naive))
		}
		for k := range naive {
			if !got[k] {
				t.Fatalf("trial %d: grounder missed pair %s", trial, k)
			}
		}
	}
}

// Property test: forward chaining matches the naive fixpoint for the f1
// rule family (playsFor ⇒ worksFor ⇒ employedBy).
func TestCloseMatchesNaiveFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prog := rulelang.MustParse(`
r1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 1
r2: quad(x, worksFor, y, t) -> quad(x, employedBy, y, t) w = 1
`)
	for trial := 0; trial < 60; trial++ {
		st := store.New()
		n := 1 + rng.Intn(15)
		type key struct {
			s, o string
			iv   temporal.Interval
		}
		plays := map[key]bool{}
		works := map[key]bool{}
		for i := 0; i < n; i++ {
			k := key{
				s:  fmt.Sprintf("p%d", rng.Intn(5)),
				o:  fmt.Sprintf("c%d", rng.Intn(5)),
				iv: temporal.Interval{Start: int64(rng.Intn(8)), End: int64(8 + rng.Intn(8))},
			}
			pred := "playsFor"
			if rng.Intn(3) == 0 {
				pred = "worksFor"
				works[k] = true
			} else {
				plays[k] = true
			}
			st.Add(rdf.NewQuad(k.s, pred, k.o, k.iv, 0.7))
		}
		// Naive closure: every playsFor also works; every works (given or
		// derived) is employed.
		expectWorks := map[key]bool{}
		for k := range plays {
			if !works[k] {
				expectWorks[k] = true
			}
		}
		expectEmployed := map[key]bool{}
		for k := range works {
			expectEmployed[k] = true
		}
		for k := range expectWorks {
			expectEmployed[k] = true
		}
		wantDerived := len(expectWorks) + len(expectEmployed)

		g := New(st)
		added, err := g.Close(prog)
		if err != nil {
			t.Fatal(err)
		}
		if added != wantDerived {
			t.Fatalf("trial %d: derived %d atoms, naive fixpoint %d", trial, added, wantDerived)
		}
	}
}
