// Package ground implements the grounding engine of TeCoRe: it
// instantiates temporal inference rules and constraints against the
// evidence in a quad store, producing the ground weighted clauses that
// the MLN and PSL solvers optimise over.
//
// Grounding is database-style: body atoms are joined against the store
// (and against derived facts) using index lookups, ordered greedily by
// boundness; numerical and Allen conditions are evaluated as early as
// their variables are bound, pruning the join. Inference rules are
// closed under forward chaining first, so rule cascades (playsFor ⇒
// worksFor ⇒ livesIn) materialise all derivable head atoms before clause
// emission. The engine also supports filtered grounding against a
// current truth assignment, the primitive behind cutting-plane inference.
//
// # Concurrency model
//
// Close, GroundProgram and GroundViolated fan their work out across a
// bounded pool of Parallelism workers (one task per rule; a rule's
// depth-0 join bindings are additionally split into chunks when the
// program has fewer rules than workers). Every parallel stage follows a
// strict two-phase discipline:
//
//   - Enumerate (parallel): workers join rule bodies against read-only
//     store views, resolving atoms with AtomTable.Lookup only, and
//     record groundings into private, task-indexed shards. Heads that
//     are not yet interned are carried as pending fact keys.
//   - Merge (sequential): shards are drained in task order — rule
//     order, then chunk order, then join-enumeration order — interning
//     pending heads and emitting clauses exactly as the sequential code
//     would have.
//
// Because atom interning and clause emission happen only in the ordered
// merge phase, atom ids, clause contents and clause order are
// byte-identical for every Parallelism setting, including 1.
package ground

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// AtomID identifies a ground atom (a potential temporal fact) in the
// ground network. IDs are dense from 0.
type AtomID int32

// AtomTable interns ground atoms. Every atom corresponds to a temporal
// statement (subject, predicate, object, interval); atoms backed by an
// input fact are evidence atoms and carry its confidence.
//
// Concurrency follows the enumerate-then-intern two-phase protocol: the
// read-side methods (Lookup, Info, Len) are safe for any number of
// concurrent readers, while Intern and InternEvidence may only run at
// sequential points — the grounder's merge phases — with no reader in
// flight. Lookup is the hottest call in grounding (once per visited
// quad), so the table carries no lock; the phase discipline, checked by
// the race-detector suites, is what makes the sharing sound, and the
// deterministic merge order is what keeps id assignment reproducible.
type AtomTable struct {
	ids   map[rdf.FactKey]AtomID
	infos []AtomInfo
}

// AtomInfo describes one ground atom.
type AtomInfo struct {
	// Key is the temporal statement this atom asserts.
	Key rdf.FactKey
	// Evidence reports whether the atom is backed by an input fact.
	Evidence bool
	// Retracted marks atoms whose backing fact was removed and that are
	// no longer derivable. Atom ids are stable, so the slot stays; the
	// atom is excluded from solving until a later update revives it.
	Retracted bool
	// Conf is the confidence of the backing fact (0 for derived atoms).
	Conf float64
	// FactID is the backing fact in the main store (-1 for derived).
	FactID store.FactID
}

// NewAtomTable returns an empty atom table.
func NewAtomTable() *AtomTable {
	return &AtomTable{ids: make(map[rdf.FactKey]AtomID)}
}

// Intern returns the id for the statement key, creating a non-evidence
// atom when unseen. Callers must hold no concurrent readers (see the
// type comment).
func (t *AtomTable) Intern(key rdf.FactKey) AtomID {
	if id, ok := t.ids[key]; ok {
		return id
	}
	id := AtomID(len(t.infos))
	t.ids[key] = id
	t.infos = append(t.infos, AtomInfo{Key: key, FactID: -1})
	return id
}

// InternEvidence returns the id for the statement key, marking it as
// evidence with the given confidence and backing fact. Write-side: see
// the type comment.
func (t *AtomTable) InternEvidence(key rdf.FactKey, conf float64, fid store.FactID) AtomID {
	id := t.Intern(key)
	info := &t.infos[id]
	if !info.Evidence {
		info.Evidence = true
		info.Conf = conf
		info.FactID = fid
	} else if conf > info.Conf {
		info.Conf = conf
	}
	return id
}

// Retract marks the atom as dead: its backing fact was removed and no
// rule derivation survives. Write-side: see the type comment.
func (t *AtomTable) Retract(id AtomID) {
	info := &t.infos[id]
	info.Retracted = true
	info.Evidence = false
	info.Conf = 0
	info.FactID = -1
}

// SetEvidence (re)binds the atom to a live input fact, reviving it if
// retracted. Unlike InternEvidence it assigns the confidence exactly —
// the incremental path mirrors the store state rather than merging
// extraction runs. Write-side: see the type comment.
func (t *AtomTable) SetEvidence(id AtomID, conf float64, fid store.FactID) {
	info := &t.infos[id]
	info.Retracted = false
	info.Evidence = true
	info.Conf = conf
	info.FactID = fid
}

// SetDerived demotes the atom to a plain derived atom (no evidence
// backing), reviving it if retracted. Used when an evidence fact is
// removed but the statement remains derivable, and when forward chaining
// re-derives a retracted atom. Write-side: see the type comment.
func (t *AtomTable) SetDerived(id AtomID) {
	info := &t.infos[id]
	info.Retracted = false
	info.Evidence = false
	info.Conf = 0
	info.FactID = -1
}

// Lookup returns the id of a statement without interning. Safe for
// concurrent readers.
func (t *AtomTable) Lookup(key rdf.FactKey) (AtomID, bool) {
	id, ok := t.ids[key]
	return id, ok
}

// Info returns the atom's description. Safe for concurrent readers.
func (t *AtomTable) Info(id AtomID) AtomInfo { return t.infos[id] }

// Len returns the number of interned atoms. Safe for concurrent readers.
func (t *AtomTable) Len() int { return len(t.infos) }

// EvidenceAtoms returns the ids of all evidence atoms.
func (t *AtomTable) EvidenceAtoms() []AtomID {
	var out []AtomID
	for i := range t.infos {
		if t.infos[i].Evidence {
			out = append(out, AtomID(i))
		}
	}
	return out
}

// DerivedAtoms returns the ids of all non-evidence (derived) atoms.
func (t *AtomTable) DerivedAtoms() []AtomID {
	var out []AtomID
	for i := range t.infos {
		if !t.infos[i].Evidence {
			out = append(out, AtomID(i))
		}
	}
	return out
}
