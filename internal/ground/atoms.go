// Package ground implements the grounding engine of TeCoRe: it
// instantiates temporal inference rules and constraints against the
// evidence in a quad store, producing the ground weighted clauses that
// the MLN and PSL solvers optimise over.
//
// Grounding is database-style: body atoms are joined against the store
// (and against derived facts) using index lookups, ordered greedily by
// boundness; numerical and Allen conditions are evaluated as early as
// their variables are bound, pruning the join. Inference rules are
// closed under forward chaining first, so rule cascades (playsFor ⇒
// worksFor ⇒ livesIn) materialise all derivable head atoms before clause
// emission. The engine also supports filtered grounding against a
// current truth assignment, the primitive behind cutting-plane inference.
//
// # Concurrency model
//
// Close, GroundProgram and GroundViolated fan their work out across a
// bounded pool of Parallelism workers (one task per rule; a rule's
// depth-0 join bindings are additionally split into chunks when the
// program has fewer rules than workers). Every parallel stage follows a
// strict two-phase discipline:
//
//   - Enumerate (parallel): workers join rule bodies against read-only
//     store views, resolving atoms with AtomTable.Lookup only, and
//     record groundings into private, task-indexed shards. Heads that
//     are not yet interned are carried as pending fact keys.
//   - Merge (sequential): shards are drained in task order — rule
//     order, then chunk order, then join-enumeration order — interning
//     pending heads and emitting clauses exactly as the sequential code
//     would have.
//
// Because atom interning and clause emission happen only in the ordered
// merge phase, atom ids, clause contents and clause order are
// byte-identical for every Parallelism setting, including 1.
package ground

import (
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/temporal"
)

// AtomID identifies a ground atom (a potential temporal fact) in the
// ground network. IDs are dense from 0.
type AtomID int32

// atomKey is the interned form of a ground atom's statement: term codes
// from the table's private dictionary plus the validity interval. At 32
// bytes it replaces the 184-byte rdf.FactKey as both the map key and the
// per-atom stored key — at millions of atoms the struct-of-arrays layout
// below is the difference between fitting in memory and not.
type atomKey struct {
	s, p, o store.TermID
	iv      temporal.Interval
}

// atomMix is SplitMix64's finalizer, the avalanche stage of atom-key
// hashing. Deterministic across processes.
func atomMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (k atomKey) hash() uint64 {
	h := atomMix(uint64(k.s)<<32 | uint64(k.p))
	h = atomMix(h ^ uint64(k.o))
	h = atomMix(h ^ uint64(k.iv.Start))
	return atomMix(h ^ uint64(k.iv.End))
}

// Atom flag bits.
const (
	atomEvidence uint8 = 1 << iota
	atomRetracted
)

// AtomTable interns ground atoms. Every atom corresponds to a temporal
// statement (subject, predicate, object, interval); atoms backed by an
// input fact are evidence atoms and carry its confidence.
//
// Internally the table is struct-of-arrays over interned keys: terms are
// encoded once into a private dictionary, per-atom state lives in
// parallel slices (key codes, flag bits, confidences, backing fact ids),
// and the key→id map is keyed by a 64-bit hash with a linear-scanned
// spill list for colliding keys — every hash hit is verified against the
// stored key, so collisions cost time, never correctness. The public
// surface still speaks rdf.FactKey; Info materialises it on demand.
//
// Concurrency follows the enumerate-then-intern two-phase protocol: the
// read-side methods (Lookup, Info, Len) are safe for any number of
// concurrent readers, while Intern and InternEvidence may only run at
// sequential points — the grounder's merge phases — with no reader in
// flight. Lookup is the hottest call in grounding (once per visited
// quad), so the table carries no lock; the phase discipline, checked by
// the race-detector suites, is what makes the sharing sound, and the
// deterministic merge order is what keeps id assignment reproducible.
type AtomTable struct {
	dict  *store.Dict
	ids   map[uint64]AtomID
	spill []AtomID
	keys  []atomKey
	flags []uint8
	confs []float64
	fids  []store.FactID

	// Mutation journal for the maintained solve plan: when enabled,
	// every write that can change an atom's canonical position or
	// subproblem (intern, evidence rebind, retraction, revival) records
	// the atom id, deduplicated per drain window by a generation stamp.
	// The planner drains it at each sync, so per-update planning walks
	// the touched atoms instead of the table.
	journalOn bool
	jgen      uint32
	jmark     []uint32
	jatoms    []AtomID
}

// AtomInfo describes one ground atom.
type AtomInfo struct {
	// Key is the temporal statement this atom asserts.
	Key rdf.FactKey
	// Evidence reports whether the atom is backed by an input fact.
	Evidence bool
	// Retracted marks atoms whose backing fact was removed and that are
	// no longer derivable. Atom ids are stable, so the slot stays; the
	// atom is excluded from solving until a later update revives it.
	Retracted bool
	// Conf is the confidence of the backing fact (0 for derived atoms).
	Conf float64
	// FactID is the backing fact in the main store (-1 for derived).
	FactID store.FactID
}

// NewAtomTable returns an empty atom table.
func NewAtomTable() *AtomTable {
	return &AtomTable{dict: store.NewDict(), ids: make(map[uint64]AtomID)}
}

// lookupKey finds the atom with exactly this encoded key, checking the
// hash slot first and the collision spill after.
func (t *AtomTable) lookupKey(k atomKey) (AtomID, bool) {
	if id, ok := t.ids[k.hash()]; ok {
		if t.keys[id] == k {
			return id, true
		}
		for _, id := range t.spill {
			if t.keys[id] == k {
				return id, true
			}
		}
	}
	return 0, false
}

// Intern returns the id for the statement key, creating a non-evidence
// atom when unseen. Callers must hold no concurrent readers (see the
// type comment).
func (t *AtomTable) Intern(key rdf.FactKey) AtomID {
	k := atomKey{
		s:  t.dict.Encode(key.S),
		p:  t.dict.Encode(key.P),
		o:  t.dict.Encode(key.O),
		iv: key.Interval,
	}
	if id, ok := t.lookupKey(k); ok {
		return id
	}
	id := AtomID(len(t.keys))
	h := k.hash()
	if _, ok := t.ids[h]; ok {
		t.spill = append(t.spill, id)
	} else {
		t.ids[h] = id
	}
	t.keys = append(t.keys, k)
	t.flags = append(t.flags, 0)
	t.confs = append(t.confs, 0)
	t.fids = append(t.fids, -1)
	t.note(id)
	return id
}

// InternEvidence returns the id for the statement key, marking it as
// evidence with the given confidence and backing fact. Write-side: see
// the type comment.
func (t *AtomTable) InternEvidence(key rdf.FactKey, conf float64, fid store.FactID) AtomID {
	id := t.Intern(key)
	if t.flags[id]&atomEvidence == 0 {
		t.flags[id] |= atomEvidence
		t.confs[id] = conf
		t.fids[id] = fid
		t.note(id)
	} else if conf > t.confs[id] {
		t.confs[id] = conf
		t.note(id)
	}
	return id
}

// Retract marks the atom as dead: its backing fact was removed and no
// rule derivation survives. Write-side: see the type comment.
func (t *AtomTable) Retract(id AtomID) {
	t.flags[id] = atomRetracted
	t.confs[id] = 0
	t.fids[id] = -1
	t.note(id)
}

// SetEvidence (re)binds the atom to a live input fact, reviving it if
// retracted. Unlike InternEvidence it assigns the confidence exactly —
// the incremental path mirrors the store state rather than merging
// extraction runs. Write-side: see the type comment.
func (t *AtomTable) SetEvidence(id AtomID, conf float64, fid store.FactID) {
	t.flags[id] = atomEvidence
	t.confs[id] = conf
	t.fids[id] = fid
	t.note(id)
}

// SetDerived demotes the atom to a plain derived atom (no evidence
// backing), reviving it if retracted. Used when an evidence fact is
// removed but the statement remains derivable, and when forward chaining
// re-derives a retracted atom. Write-side: see the type comment.
func (t *AtomTable) SetDerived(id AtomID) {
	t.flags[id] = 0
	t.confs[id] = 0
	t.fids[id] = -1
	t.note(id)
}

// Lookup returns the id of a statement without interning. Safe for
// concurrent readers.
func (t *AtomTable) Lookup(key rdf.FactKey) (AtomID, bool) {
	s, ok := t.dict.Lookup(key.S)
	if !ok {
		return 0, false
	}
	p, ok := t.dict.Lookup(key.P)
	if !ok {
		return 0, false
	}
	o, ok := t.dict.Lookup(key.O)
	if !ok {
		return 0, false
	}
	return t.lookupKey(atomKey{s: s, p: p, o: o, iv: key.Interval})
}

// Info returns the atom's description, materialising the statement key
// from the interned codes. Safe for concurrent readers.
func (t *AtomTable) Info(id AtomID) AtomInfo {
	k := t.keys[id]
	fl := t.flags[id]
	return AtomInfo{
		Key: rdf.FactKey{
			S:        t.dict.Decode(k.s),
			P:        t.dict.Decode(k.p),
			O:        t.dict.Decode(k.o),
			Interval: k.iv,
		},
		Evidence:  fl&atomEvidence != 0,
		Retracted: fl&atomRetracted != 0,
		Conf:      t.confs[id],
		FactID:    t.fids[id],
	}
}

// Len returns the number of interned atoms. Safe for concurrent readers.
func (t *AtomTable) Len() int { return len(t.keys) }

// IsEvidence reports whether the atom is backed by an input fact,
// without materialising the statement key. Safe for concurrent readers.
func (t *AtomTable) IsEvidence(id AtomID) bool { return t.flags[id]&atomEvidence != 0 }

// IsRetracted reports whether the atom is retracted, without
// materialising the statement key. Safe for concurrent readers.
func (t *AtomTable) IsRetracted(id AtomID) bool { return t.flags[id]&atomRetracted != 0 }

// Confidence returns the backing fact's confidence (0 for derived
// atoms), without materialising the statement key. Safe for concurrent
// readers.
func (t *AtomTable) Confidence(id AtomID) float64 { return t.confs[id] }

// BackingFact returns the backing fact id (-1 for derived atoms),
// without materialising the statement key. Safe for concurrent readers.
func (t *AtomTable) BackingFact(id AtomID) store.FactID { return t.fids[id] }

// CompareKeys orders two atoms by their statement keys, exactly as
// rdf.FactKey.Compare orders the keys Info would materialise — the
// derived-segment comparator of the canonical solve order, without the
// per-call FactKey construction. Safe for concurrent readers.
func (t *AtomTable) CompareKeys(a, b AtomID) int {
	ka, kb := &t.keys[a], &t.keys[b]
	if ka.s != kb.s {
		if c := t.dict.Decode(ka.s).Compare(t.dict.Decode(kb.s)); c != 0 {
			return c
		}
	}
	if ka.p != kb.p {
		if c := t.dict.Decode(ka.p).Compare(t.dict.Decode(kb.p)); c != 0 {
			return c
		}
	}
	if ka.o != kb.o {
		if c := t.dict.Decode(ka.o).Compare(t.dict.Decode(kb.o)); c != 0 {
			return c
		}
	}
	switch {
	case ka.iv.Start != kb.iv.Start:
		if ka.iv.Start < kb.iv.Start {
			return -1
		}
		return 1
	case ka.iv.End != kb.iv.End:
		if ka.iv.End < kb.iv.End {
			return -1
		}
		return 1
	}
	return 0
}

// EnableJournal switches on the mutation journal. Atoms interned or
// mutated from this point on are reported by DrainJournal; state
// present before enablement is not (the planner's first build scans the
// table instead).
func (t *AtomTable) EnableJournal() {
	if t.journalOn {
		return
	}
	t.journalOn = true
	t.jgen = 1
	t.jmark = make([]uint32, len(t.keys))
}

// DrainJournal invokes fn for every atom touched since the previous
// drain (each once, in touch order) and resets the journal window.
// Write-side: see the type comment.
func (t *AtomTable) DrainJournal(fn func(AtomID)) {
	for _, a := range t.jatoms {
		fn(a)
	}
	t.jatoms = t.jatoms[:0]
	t.jgen++
	if t.jgen == 0 { // stamp wrap: stale marks would alias the new window
		for i := range t.jmark {
			t.jmark[i] = 0
		}
		t.jgen = 1
	}
}

// JournalLen reports the number of atoms touched since the last drain.
func (t *AtomTable) JournalLen() int { return len(t.jatoms) }

// note records a state change of atom id in the journal.
func (t *AtomTable) note(id AtomID) {
	if !t.journalOn {
		return
	}
	for len(t.jmark) <= int(id) {
		t.jmark = append(t.jmark, 0)
	}
	if t.jmark[id] == t.jgen {
		return
	}
	t.jmark[id] = t.jgen
	t.jatoms = append(t.jatoms, id)
}

// EvidenceAtoms returns the ids of all evidence atoms.
func (t *AtomTable) EvidenceAtoms() []AtomID {
	var out []AtomID
	for i, fl := range t.flags {
		if fl&atomEvidence != 0 {
			out = append(out, AtomID(i))
		}
	}
	return out
}

// DerivedAtoms returns the ids of all non-evidence (derived) atoms.
func (t *AtomTable) DerivedAtoms() []AtomID {
	var out []AtomID
	for i, fl := range t.flags {
		if fl&atomEvidence == 0 {
			out = append(out, AtomID(i))
		}
	}
	return out
}
