package ground

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Grounder instantiates rules against evidence. Construct one per
// (store, program) pair: New interns every input fact as an evidence
// atom, Close forward-chains the inference rules to materialise derivable
// head atoms, and GroundProgram / GroundViolated emit clauses.
type Grounder struct {
	main    *store.Store
	derived *store.Store
	atoms   *AtomTable

	// MaxRounds bounds forward-chaining iterations; rule cascades deeper
	// than this report an error rather than looping (head time
	// expressions can otherwise generate unboundedly many intervals).
	MaxRounds int
}

// New prepares a grounder over the given evidence store.
func New(main *store.Store) *Grounder {
	g := &Grounder{
		main:      main,
		derived:   store.New(),
		atoms:     NewAtomTable(),
		MaxRounds: 12,
	}
	for i := 0; i < main.Len(); i++ {
		id := store.FactID(i)
		q := main.Fact(id)
		g.atoms.InternEvidence(q.Fact(), q.Confidence, id)
	}
	return g
}

// Atoms exposes the atom table.
func (g *Grounder) Atoms() *AtomTable { return g.atoms }

// DerivedStore exposes the store of forward-chained facts.
func (g *Grounder) DerivedStore() *store.Store { return g.derived }

// Close forward-chains the program's inference rules until fixpoint,
// interning every derivable head atom. It returns the number of derived
// atoms added. Clauses are not emitted here; call GroundProgram after.
func (g *Grounder) Close(prog *logic.Program) (int, error) {
	rules := prog.InferenceRules()
	if len(rules) == 0 {
		return 0, nil
	}
	total := 0
	for round := 0; ; round++ {
		if round >= g.MaxRounds {
			return total, fmt.Errorf("ground: forward chaining exceeded %d rounds; rule cascade may be unbounded", g.MaxRounds)
		}
		added := 0
		for _, r := range rules {
			var newKeys []rdf.FactKey
			err := g.join(r, nil, func(binding *logic.Binding, bodyAtoms []AtomID) error {
				key, ok := r.Head.Atom.Resolve(binding)
				if !ok {
					return nil // empty time expression: no derivation
				}
				if _, seen := g.atoms.Lookup(key); !seen {
					newKeys = append(newKeys, key)
				}
				return nil
			})
			if err != nil {
				return total, err
			}
			for _, key := range newKeys {
				if _, seen := g.atoms.Lookup(key); seen {
					continue
				}
				g.atoms.Intern(key)
				if _, err := g.derived.Add(rdf.Quad{
					Subject: key.S, Predicate: key.P, Object: key.O,
					Interval: key.Interval, Confidence: 1,
				}); err != nil {
					return total, fmt.Errorf("ground: derived fact %v: %w", key, err)
				}
				added++
			}
		}
		total += added
		if added == 0 {
			return total, nil
		}
	}
}

// GroundProgram grounds every rule and constraint, emitting the full
// ground clause set (call Close first so rule cascades are complete).
func (g *Grounder) GroundProgram(prog *logic.Program) (*ClauseSet, error) {
	cs := NewClauseSet()
	for _, r := range prog.Rules {
		if err := g.groundRule(r, nil, cs, false); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// GroundViolated grounds only the clauses violated under the given truth
// assignment: body atoms are matched against currently-true atoms and a
// clause is emitted only when its head fails. This is the cutting-plane
// primitive used by the MLN solver.
func (g *Grounder) GroundViolated(prog *logic.Program, truth func(AtomID) bool) (*ClauseSet, error) {
	cs := NewClauseSet()
	for _, r := range prog.Rules {
		if err := g.groundRule(r, truth, cs, true); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// groundRule joins the rule body and emits clauses. With onlyViolated,
// satisfied groundings are skipped (and truth filters body matches).
func (g *Grounder) groundRule(r *logic.Rule, truth func(AtomID) bool, cs *ClauseSet, onlyViolated bool) error {
	return g.join(r, truth, func(binding *logic.Binding, bodyAtoms []AtomID) error {
		c := Clause{Weight: r.Weight, Rule: r.Name}
		for _, a := range bodyAtoms {
			c.Lits = append(c.Lits, Lit{Atom: a, Neg: true})
		}
		switch r.Head.Kind {
		case logic.HeadAtom:
			key, ok := r.Head.Atom.Resolve(binding)
			if !ok {
				return nil // empty head time expression: no obligation
			}
			id, seen := g.atoms.Lookup(key)
			if !seen {
				// Close was not run (or truth-filtered matching found a
				// grounding whose head was never materialised).
				id = g.atoms.Intern(key)
			}
			if onlyViolated && truth != nil && truth(id) {
				return nil
			}
			c.Lits = append(c.Lits, Lit{Atom: id})
		case logic.HeadCond:
			holds, err := r.Head.Cond.Eval(binding)
			if err != nil {
				return fmt.Errorf("ground: rule %s head: %w", r.Name, err)
			}
			if holds {
				return nil // grounding satisfied; no clause
			}
		case logic.HeadFalse:
			// Always a violation clause over the body.
		}
		if !cs.Add(c) {
			return fmt.Errorf("ground: rule %s grounds to an unconditionally violated hard constraint", r.Name)
		}
		return nil
	})
}

// join enumerates all bindings of the rule body, invoking emit with the
// binding and the atom ids of the matched body facts. With truth set,
// only currently-true atoms participate in matches.
func (g *Grounder) join(r *logic.Rule, truth func(AtomID) bool, emit func(*logic.Binding, []AtomID) error) error {
	order, err := planOrder(r)
	if err != nil {
		return err
	}
	// condAt[i] lists conditions evaluable once atoms order[0..i] are
	// bound (all their variables covered, earliest position).
	condAt, err := scheduleConds(r, order)
	if err != nil {
		return err
	}
	binding := logic.NewBinding()
	bodyAtoms := make([]AtomID, len(order))
	return g.joinStep(r, order, condAt, 0, binding, bodyAtoms, truth, emit)
}

func (g *Grounder) joinStep(r *logic.Rule, order []int, condAt [][]logic.Condition, depth int,
	binding *logic.Binding, bodyAtoms []AtomID, truth func(AtomID) bool,
	emit func(*logic.Binding, []AtomID) error) error {

	if depth == len(order) {
		return emit(binding, bodyAtoms)
	}
	atom := r.Body[order[depth]]
	pat, timeBound, err := g.patternFor(atom, binding)
	if err != nil {
		return err
	}

	var innerErr error
	visit := func(q rdf.Quad) bool {
		id, ok := g.atoms.Lookup(q.Fact())
		if !ok {
			return true // fact added after setup; not part of the network
		}
		if truth != nil && !truth(id) {
			return true
		}
		// Extend the binding, remembering which variables this step bound
		// so backtracking can undo exactly those.
		var boundObjs []string
		var boundTime string
		undo := func() {
			for _, v := range boundObjs {
				delete(binding.Objs, v)
			}
			if boundTime != "" {
				delete(binding.Times, boundTime)
			}
		}
		bindObj := func(t logic.Term, val rdf.Term) bool {
			if !t.IsVar() {
				return t.Const == val
			}
			if cur, ok := binding.Objs[t.Var]; ok {
				return cur == val
			}
			binding.Objs[t.Var] = val
			boundObjs = append(boundObjs, t.Var)
			return true
		}
		okb := bindObj(atom.S, q.Subject) && bindObj(atom.P, q.Predicate) && bindObj(atom.O, q.Object)
		if okb && !timeBound && atom.T.IsVar() {
			if cur, bound := binding.Times[atom.T.Var]; bound {
				okb = cur == q.Interval
			} else {
				binding.Times[atom.T.Var] = q.Interval
				boundTime = atom.T.Var
			}
		}
		if !okb {
			undo()
			return true
		}
		// Evaluate conditions that just became fully bound.
		for _, cond := range condAt[depth] {
			holds, err := cond.Eval(binding)
			if err != nil {
				innerErr = fmt.Errorf("ground: rule %s: %w", r.Name, err)
				undo()
				return false
			}
			if !holds {
				undo()
				return true
			}
		}
		bodyAtoms[depth] = id
		if err := g.joinStep(r, order, condAt, depth+1, binding, bodyAtoms, truth, emit); err != nil {
			innerErr = err
			undo()
			return false
		}
		undo()
		return true
	}

	g.main.Match(pat, func(_ store.FactID, q rdf.Quad) bool { return visit(q) })
	if innerErr != nil {
		return innerErr
	}
	if g.derived.Len() > 0 {
		g.derived.Match(pat, func(_ store.FactID, q rdf.Quad) bool { return visit(q) })
	}
	return innerErr
}

// patternFor builds the most selective store pattern for a body atom
// under the current binding. timeBound reports whether the temporal
// dimension is already enforced by the pattern.
func (g *Grounder) patternFor(atom logic.QuadAtom, binding *logic.Binding) (store.Pattern, bool, error) {
	var pat store.Pattern
	fill := func(t logic.Term, dst *rdf.Term) {
		if !t.IsVar() {
			*dst = t.Const
		} else if v, ok := binding.Objs[t.Var]; ok {
			*dst = v
		}
	}
	fill(atom.S, &pat.S)
	fill(atom.P, &pat.P)
	fill(atom.O, &pat.O)
	switch atom.T.Kind {
	case logic.TimeVar:
		if iv, ok := binding.Times[atom.T.Var]; ok {
			pat.Time = store.TimeFilter{Kind: store.TimeEquals, Interval: iv}
			return pat, true, nil
		}
		return pat, false, nil
	case logic.TimeConst:
		pat.Time = store.TimeFilter{Kind: store.TimeEquals, Interval: atom.T.Const}
		return pat, true, nil
	default:
		return pat, false, fmt.Errorf("ground: body atom %s: time expressions are only allowed in rule heads", atom)
	}
}

// planOrder chooses a join order for the body atoms: greedily pick the
// atom with the most bound positions (constants or already-bound
// variables), breaking ties by original position. This sends selective
// atoms (shared subjects, constant predicates) through the store indexes
// first.
func planOrder(r *logic.Rule) ([]int, error) {
	n := len(r.Body)
	if n == 0 {
		return nil, fmt.Errorf("ground: rule %s has an empty body", r.Name)
	}
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := boundScore(r.Body[i], bound)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range r.Body[best].Vars(nil) {
			bound[v] = true
		}
	}
	return order, nil
}

func boundScore(a logic.QuadAtom, bound map[string]bool) int {
	score := 0
	terms := []logic.Term{a.S, a.P, a.O}
	weights := []int{3, 2, 2} // bound subjects are the cheapest index path
	for i, t := range terms {
		if !t.IsVar() || bound[t.Var] {
			score += weights[i]
		}
	}
	if a.T.Kind == logic.TimeConst || a.T.Kind == logic.TimeVar && bound[a.T.Var] {
		score++
	}
	return score
}

// scheduleConds assigns each condition to the earliest join depth at
// which all its variables are bound.
func scheduleConds(r *logic.Rule, order []int) ([][]logic.Condition, error) {
	out := make([][]logic.Condition, len(order))
	depthOf := func(vars []string) (int, bool) {
		// Returns the first depth whose cumulative binding covers vars.
		covered := make(map[string]bool)
		for d, idx := range order {
			for _, v := range r.Body[idx].Vars(nil) {
				covered[v] = true
			}
			all := true
			for _, v := range vars {
				if !covered[v] {
					all = false
					break
				}
			}
			if all {
				return d, true
			}
		}
		return 0, false
	}
	for _, c := range r.Conds {
		vars := c.CondVars(nil)
		d, ok := depthOf(vars)
		if !ok {
			return nil, fmt.Errorf("ground: rule %s: condition %s has variables not bound by the body", r.Name, c)
		}
		out[d] = append(out[d], c)
	}
	return out, nil
}
