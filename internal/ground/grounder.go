package ground

import (
	"fmt"
	"time"

	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Grounder instantiates rules against evidence. Construct one per
// (store, program) pair: New interns every input fact as an evidence
// atom, Close forward-chains the inference rules to materialise derivable
// head atoms, and GroundProgram / GroundViolated emit clauses.
//
// Grounding runs on a bounded worker pool (see the package comment for
// the two-phase enumerate/merge discipline that keeps output identical
// at every worker count).
type Grounder struct {
	main     *store.Store
	mainView store.View
	derived  *store.Store
	// derivedView is refreshed at the start of every parallel phase (a
	// sequential point), after which the derived store is not mutated
	// until the next merge phase.
	derivedView store.View

	atoms *AtomTable

	// MaxRounds bounds forward-chaining iterations; rule cascades deeper
	// than this report an error rather than looping (head time
	// expressions can otherwise generate unboundedly many intervals).
	// Rounds are Jacobi-style — each materialises one cascade depth —
	// so the bound is the deepest rule chain supported.
	MaxRounds int

	// Parallelism bounds the grounding worker pool: 0 means GOMAXPROCS,
	// 1 forces sequential execution. Output is byte-identical at every
	// setting.
	Parallelism int

	// Legacy forces the pre-compilation grounding path: boundness-scored
	// join orders and map-binding joins over decoded terms. Kept as the
	// benchmark baseline and differential-testing reference; the solver
	// input is identical either way.
	Legacy bool

	// maps translate term codes between the store dictionaries and the
	// atom table's; synced by refreshViews at sequential points.
	maps codeMaps

	// Grounding statistics accumulated since the last TakeStats.
	statTotal time.Duration
	statRules map[string]*RuleGroundStats
}

// New prepares a grounder over the given evidence store. Live facts are
// interned as evidence atoms in fact-id order; tombstoned facts are
// skipped.
func New(main *store.Store) *Grounder {
	g := &Grounder{
		main:      main,
		mainView:  main.ReadView(),
		derived:   store.New(),
		atoms:     NewAtomTable(),
		MaxRounds: 32,
	}
	for i := 0; i < main.IDBound(); i++ {
		id := store.FactID(i)
		if !main.Live(id) {
			continue
		}
		q := main.Fact(id)
		g.atoms.InternEvidence(q.Fact(), q.Confidence, id)
	}
	return g
}

// Store exposes the evidence store the grounder was built over.
func (g *Grounder) Store() *store.Store { return g.main }

// Atoms exposes the atom table.
func (g *Grounder) Atoms() *AtomTable { return g.atoms }

// DerivedStore exposes the store of forward-chained facts.
func (g *Grounder) DerivedStore() *store.Store { return g.derived }

// joinTask is one unit of parallel grounding work: a rule with its
// precomputed join order and condition schedule, restricted to a
// contiguous chunk of the depth-0 candidate facts. Splitting at depth 0
// lets a program with fewer rules than workers still saturate the pool;
// because chunks are contiguous and merged in order, chunk boundaries
// never affect output. Candidates are carried as compact fact ids —
// main-store ids first, then derived — and decoded by the worker, so a
// chunk costs 8 bytes per candidate rather than a materialised quad.
type joinTask struct {
	rule *logic.Rule
	// cr selects the compiled execution path; the legacy fields below
	// (order, condAt, t0bound, seedQuads) drive the map-binding path and
	// are unset when cr is non-nil.
	cr     *compiledRule
	order  []int
	condAt [][]logic.Condition
	// t0bound reports whether the depth-0 candidate source already
	// enforces the first atom's temporal dimension, so the join need not
	// re-derive it per task (it is a property of the atom, not the
	// chunk).
	t0bound    bool
	mainIDs    []store.FactID
	derivedIDs []store.FactID
	// seedQuads, when set, replaces the store scan as the depth-0
	// candidate source — the seminaive delta passes seed the join
	// directly from the (small) delta instead of the full indexes.
	seedQuads []rdf.Quad
	// seedAtoms is seedQuads for the compiled path: the delta atoms
	// themselves, whose interned codes seed the join with no decoding.
	seedAtoms []AtomID
	// mode restricts which atoms each body position may bind during the
	// seminaive delta passes; nil for full grounding.
	mode *deltaMode

	// Per-task profiling, written by the task's worker and folded into
	// the grounder's stats at the next sequential point.
	elapsed time.Duration
	emitted int64
}

// Restriction kinds of a seminaive pass, per body-atom position.
const (
	bindAny   int8 = iota // no restriction
	bindDelta             // position must bind a delta atom
	bindOld               // position must bind a non-delta atom
)

// deltaMode parameterises one seminaive join pass: the delta atom set
// and the per-body-position restriction. Stratifying positions as
// (old..., delta, any...) enumerates every grounding containing at least
// one delta atom exactly once — by its first delta position — so clause
// weights are never double-counted.
type deltaMode struct {
	set  map[AtomID]bool
	kind []int8 // indexed by body-atom position
}

func (m *deltaMode) admits(bodyPos int, id AtomID) bool {
	if m == nil {
		return true
	}
	switch m.kind[bodyPos] {
	case bindDelta:
		return m.set[id]
	case bindOld:
		return !m.set[id]
	}
	return true
}

// joinTasks plans the task list for one parallel phase over the given
// rules. It also refreshes both store views — callers must not mutate
// either store until the phase's merge completes.
func (g *Grounder) joinTasks(rules []*logic.Rule, workers int) ([]joinTask, error) {
	g.refreshViews()
	chunksPer := 1
	if workers > 1 && len(rules) < workers {
		// Oversplit to roughly two tasks per worker so one heavy rule
		// cannot strand the pool.
		chunksPer = (2*workers + len(rules) - 1) / len(rules)
	}
	tasks := make([]joinTask, 0, len(rules)*chunksPer)
	empty := logic.NewBinding()
	for _, r := range rules {
		if !g.Legacy {
			order, est, err := g.planSelective(r, -1)
			if err != nil {
				return nil, err
			}
			cr, err := g.compileRule(r, order, est)
			if err != nil {
				return nil, err
			}
			g.notePlan(r.Name, order, est)
			t := joinTask{rule: r, cr: cr}
			// Materialise the depth-0 candidate ids: main-store matches
			// first, then derived, mirroring the per-depth visit order
			// of the join. A pattern miss (constant absent from that
			// store) means no candidates there at all.
			fr := logic.NewFrame(cr.sm)
			if cp, ok := codePatternAt(&cr.quads[0], fr, g.maps.atomToMain); ok {
				t.mainIDs = g.mainView.MatchCodeIDs(cp)
			}
			if g.derivedView.Len() > 0 {
				if cp, ok := codePatternAt(&cr.quads[0], fr, g.maps.atomToDerived); ok {
					t.derivedIDs = g.derivedView.MatchCodeIDs(cp)
				}
			}
			tasks = splitTask(tasks, t, chunksPer)
			continue
		}
		order, err := planOrder(r)
		if err != nil {
			return nil, err
		}
		condAt, err := scheduleConds(r, order)
		if err != nil {
			return nil, err
		}
		g.notePlan(r.Name, order, nil)
		pat, t0bound, err := g.patternFor(r.Body[order[0]], empty)
		if err != nil {
			return nil, err
		}
		t := joinTask{rule: r, order: order, condAt: condAt, t0bound: t0bound,
			mainIDs: g.mainView.MatchIDs(pat)}
		if g.derivedView.Len() > 0 {
			t.derivedIDs = g.derivedView.MatchIDs(pat)
		}
		tasks = splitTask(tasks, t, chunksPer)
	}
	return tasks, nil
}

// splitTask appends t to tasks, cut into up to chunksPer contiguous
// windows over its main++derived depth-0 candidates. Because chunks are
// contiguous and merged in order, chunk boundaries never affect output.
func splitTask(tasks []joinTask, t joinTask, chunksPer int) []joinTask {
	mainIDs, derivedIDs := t.mainIDs, t.derivedIDs
	total := len(mainIDs) + len(derivedIDs)
	chunks := chunksPer
	if chunks > total {
		chunks = total
	}
	if chunks <= 1 {
		return append(tasks, t)
	}
	for c := 0; c < chunks; c++ {
		lo := c * total / chunks
		hi := (c + 1) * total / chunks
		ct := t
		ct.mainIDs, ct.derivedIDs = nil, nil
		// Cut the [lo, hi) window out of the main++derived
		// concatenation.
		if lo < len(mainIDs) {
			mhi := hi
			if mhi > len(mainIDs) {
				mhi = len(mainIDs)
			}
			ct.mainIDs = mainIDs[lo:mhi]
		}
		if hi > len(mainIDs) {
			dlo := lo - len(mainIDs)
			if dlo < 0 {
				dlo = 0
			}
			ct.derivedIDs = derivedIDs[dlo : hi-len(mainIDs)]
		}
		tasks = append(tasks, ct)
	}
	return tasks
}

// Close forward-chains the program's inference rules until fixpoint,
// interning every derivable head atom. It returns the number of derived
// atoms added. Clauses are not emitted here; call GroundProgram after.
//
// Each round evaluates every rule against the store state at the start
// of the round (Jacobi-style), so rules can run concurrently; a head
// derived in round k becomes matchable in round k+1. The fixpoint is the
// same as chaining rules one at a time, and the round-start snapshot
// makes the intern order — and therefore every atom id — independent of
// the worker count.
func (g *Grounder) Close(prog *logic.Program) (int, error) {
	rules := prog.InferenceRules()
	if len(rules) == 0 {
		return 0, nil
	}
	start := time.Now()
	defer func() { g.statTotal += time.Since(start) }()
	workers := par.Workers(g.Parallelism)
	total := 0
	for round := 0; ; round++ {
		if round >= g.MaxRounds {
			return total, fmt.Errorf("ground: forward chaining exceeded %d rounds; rule cascade may be unbounded", g.MaxRounds)
		}
		tasks, err := g.joinTasks(rules, workers)
		if err != nil {
			return total, err
		}
		if workers == 1 || len(tasks) <= 1 {
			// Single worker: intern heads at first emission instead of
			// buffering candidate keys. The views were pinned by joinTasks,
			// so a head interned mid-round stays unmatchable until the next
			// round — the Jacobi semantics the parallel merge provides — and
			// first-emission order is exactly the merge's intern order.
			added := 0
			for i := range tasks {
				err := g.runJoin(&tasks[i], nil, func(env emitEnv, _ []AtomID) error {
					state, _, key := env.resolveHeadAtom()
					if state != headStatePending {
						return nil
					}
					g.atoms.Intern(key)
					if _, err := g.derived.Add(rdf.Quad{
						Subject: key.S, Predicate: key.P, Object: key.O,
						Interval: key.Interval, Confidence: 1,
					}); err != nil {
						return fmt.Errorf("ground: derived fact %v: %w", key, err)
					}
					added++
					return nil
				})
				if err != nil {
					return total, err
				}
			}
			g.noteTaskStats(tasks)
			total += added
			if added == 0 {
				return total, nil
			}
			continue
		}
		// Enumerate phase: collect candidate head keys per task. Workers
		// only read — resolveHeadAtom reports pending only for keys not
		// interned before this round; the merge re-checks for keys
		// produced by several tasks.
		newKeys := make([][]rdf.FactKey, len(tasks))
		errs := make([]error, len(tasks))
		par.Do(len(tasks), workers, func(i int) {
			t := &tasks[i]
			errs[i] = g.runJoin(t, nil, func(env emitEnv, _ []AtomID) error {
				if state, _, key := env.resolveHeadAtom(); state == headStatePending {
					newKeys[i] = append(newKeys[i], key)
				}
				return nil
			})
		})
		// Merge phase: intern fresh heads in task order.
		g.noteTaskStats(tasks)
		added := 0
		for i := range tasks {
			if errs[i] != nil {
				return total, errs[i]
			}
			for _, key := range newKeys[i] {
				if _, seen := g.atoms.Lookup(key); seen {
					continue
				}
				g.atoms.Intern(key)
				if _, err := g.derived.Add(rdf.Quad{
					Subject: key.S, Predicate: key.P, Object: key.O,
					Interval: key.Interval, Confidence: 1,
				}); err != nil {
					return total, fmt.Errorf("ground: derived fact %v: %w", key, err)
				}
				added++
			}
		}
		total += added
		if added == 0 {
			return total, nil
		}
	}
}

// GroundProgram grounds every rule and constraint, emitting the full
// ground clause set (call Close first so rule cascades are complete).
func (g *Grounder) GroundProgram(prog *logic.Program) (*ClauseSet, error) {
	return g.ground(prog.Rules, nil, false)
}

// GroundViolated grounds only the clauses violated under the given truth
// assignment: body atoms are matched against currently-true atoms and a
// clause is emitted only when its head fails. This is the cutting-plane
// primitive used by the MLN solver.
func (g *Grounder) GroundViolated(prog *logic.Program, truth func(AtomID) bool) (*ClauseSet, error) {
	return g.ground(prog.Rules, truth, true)
}

// Head resolution states of a pending clause.
const (
	headNone     uint8 = iota // condition or falsum head: body literals only
	headResolved              // head atom already interned; id is in lits
	headPending               // head atom needs interning at merge time
)

// pendingClause is one grounding enumerated during the parallel phase:
// body literals are fully resolved, a head atom that is not yet interned
// is carried as its fact key so the sequential merge can intern it in
// deterministic order. The key is behind a pointer — it is rare (Close
// interns every derivable head first) and inlining it tripled the size
// of every buffered grounding.
type pendingClause struct {
	lits     []Lit
	headKind uint8
	headKey  *rdf.FactKey
}

// shardBlockSize bounds one contiguous shard allocation. Appending
// millions of groundings to a single ever-regrown slice re-zeroes
// gigabytes of fresh large spans — that zeroing, not the joins,
// dominated cold-grounding profiles at 10⁶ facts. Fixed blocks are each
// allocated once at full size and never copied.
const shardBlockSize = 8192

// clauseShard buffers one task's groundings as a list of fixed-size
// blocks.
type clauseShard struct{ blocks [][]pendingClause }

func (s *clauseShard) add(pc pendingClause) {
	n := len(s.blocks)
	if n == 0 || len(s.blocks[n-1]) == cap(s.blocks[n-1]) {
		s.blocks = append(s.blocks, make([]pendingClause, 0, shardBlockSize))
		n++
	}
	s.blocks[n-1] = append(s.blocks[n-1], pc)
}

// ground joins every rule across the worker pool, emitting clause shards
// that the merge phase combines in rule order. With onlyViolated,
// satisfied groundings are skipped (and truth filters body matches).
func (g *Grounder) ground(rules []*logic.Rule, truth func(AtomID) bool, onlyViolated bool) (*ClauseSet, error) {
	start := time.Now()
	defer func() { g.statTotal += time.Since(start) }()
	workers := par.Workers(g.Parallelism)
	tasks, err := g.joinTasks(rules, workers)
	if err != nil {
		return nil, err
	}
	hint := 0
	if !onlyViolated {
		// Full grounding yields on the order of one-to-two clauses per
		// atom; cutting-plane calls (onlyViolated) yield far fewer and
		// should not pay for a network-sized index.
		hint = g.atoms.Len() + g.atoms.Len()/2
	}
	cs := NewClauseSetSized(hint)
	if err := g.groundTasks(tasks, truth, onlyViolated, cs); err != nil {
		return nil, err
	}
	return cs, nil
}

// groundTasks runs the enumerate/merge phases for a prepared task list,
// merging emitted clauses into cs (which may already hold clauses from
// earlier solves on the incremental path).
func (g *Grounder) groundTasks(tasks []joinTask, truth func(AtomID) bool, onlyViolated bool, cs *ClauseSet) error {
	workers := par.Workers(g.Parallelism)
	if workers == 1 || len(tasks) <= 1 {
		return g.groundTasksSeq(tasks, truth, onlyViolated, cs)
	}
	// Enumerate phase: private shard per task, Lookup-only atom access.
	shards := make([]clauseShard, len(tasks))
	errs := make([]error, len(tasks))
	par.Do(len(tasks), workers, func(i int) {
		t := &tasks[i]
		errs[i] = g.runJoin(t, truth, func(env emitEnv, bodyAtoms []AtomID) error {
			pc := pendingClause{lits: make([]Lit, 0, len(bodyAtoms)+1)}
			for _, a := range bodyAtoms {
				pc.lits = append(pc.lits, Lit{Atom: a, Neg: true})
			}
			switch t.rule.Head.Kind {
			case logic.HeadAtom:
				state, id, key := env.resolveHeadAtom()
				switch state {
				case headStateMiss:
					return nil // empty head time expression: no obligation
				case headStateResolved:
					if onlyViolated && truth != nil && truth(id) {
						return nil
					}
					pc.headKind = headResolved
					pc.lits = append(pc.lits, Lit{Atom: id})
				case headStatePending:
					// Close was not run (or truth-filtered matching found
					// a grounding whose head was never materialised);
					// intern deterministically at merge time.
					pc.headKind = headPending
					k := key
					pc.headKey = &k
				}
			case logic.HeadCond:
				holds, err := env.evalHeadCond()
				if err != nil {
					return fmt.Errorf("ground: rule %s head: %w", t.rule.Name, err)
				}
				if holds {
					return nil // grounding satisfied; no clause
				}
			case logic.HeadFalse:
				// Always a violation clause over the body.
			}
			shards[i].add(pc)
			return nil
		})
	})
	// Merge phase: drain shards in task order, interning pending heads
	// and deduplicating into the clause set exactly as sequential
	// grounding would.
	g.noteTaskStats(tasks)
	for i := range tasks {
		if errs[i] != nil {
			return errs[i]
		}
		r := tasks[i].rule
		for _, blk := range shards[i].blocks {
			for _, pc := range blk {
				c := Clause{Lits: pc.lits, Weight: r.Weight, Rule: r.Name}
				if pc.headKind == headPending {
					id := g.atoms.Intern(*pc.headKey)
					if onlyViolated && truth != nil && truth(id) {
						continue
					}
					c.Lits = append(c.Lits, Lit{Atom: id})
				}
				if !cs.Add(c) {
					return fmt.Errorf("ground: rule %s grounds to an unconditionally violated hard constraint", r.Name)
				}
			}
		}
	}
	return nil
}

// groundTasksSeq is groundTasks for a single worker: tasks run inline in
// order, so clauses go straight into the clause set with no
// pendingClause buffering at all. A pending head is interned at its
// first emission — exactly the (task, emission-order) position where the
// parallel merge would intern it — so atom ids, clause order and the
// dedup aggregation are byte-identical to the buffered path. One shared
// literal scratch serves every emission; ClauseSet.Add copies literals
// it retains.
func (g *Grounder) groundTasksSeq(tasks []joinTask, truth func(AtomID) bool, onlyViolated bool, cs *ClauseSet) error {
	var scratch []Lit
	for i := range tasks {
		t := &tasks[i]
		err := g.runJoin(t, truth, func(env emitEnv, bodyAtoms []AtomID) error {
			if cap(scratch) < len(bodyAtoms)+1 {
				scratch = make([]Lit, 0, len(bodyAtoms)+16)
			}
			lits := scratch[:0]
			for _, a := range bodyAtoms {
				lits = append(lits, Lit{Atom: a, Neg: true})
			}
			switch t.rule.Head.Kind {
			case logic.HeadAtom:
				state, id, key := env.resolveHeadAtom()
				switch state {
				case headStateMiss:
					return nil // empty head time expression: no obligation
				case headStatePending:
					id = g.atoms.Intern(key)
				}
				if onlyViolated && truth != nil && truth(id) {
					return nil
				}
				lits = append(lits, Lit{Atom: id})
			case logic.HeadCond:
				holds, err := env.evalHeadCond()
				if err != nil {
					return fmt.Errorf("ground: rule %s head: %w", t.rule.Name, err)
				}
				if holds {
					return nil // grounding satisfied; no clause
				}
			case logic.HeadFalse:
				// Always a violation clause over the body.
			}
			if !cs.Add(Clause{Lits: lits, Weight: t.rule.Weight, Rule: t.rule.Name}) {
				return fmt.Errorf("ground: rule %s grounds to an unconditionally violated hard constraint", t.rule.Name)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	g.noteTaskStats(tasks)
	return nil
}

// refreshViews re-pins the grounder's store views at the current
// epochs; a sequential point between mutation and the next join phase.
// The compiled path also brings the code translation tables up to date
// here, so workers read them lock-free for the rest of the phase.
func (g *Grounder) refreshViews() {
	g.mainView = g.main.ReadView()
	g.derivedView = g.derived.ReadView()
	if !g.Legacy {
		g.syncCodeMaps()
	}
}

// runJoin enumerates all bindings of the task's rule body over its
// depth-0 chunk, invoking emit with the grounding environment and the
// atom ids of the matched body facts. With truth set, only
// currently-true atoms participate in matches. Safe to run concurrently
// with other tasks: it reads the store views, the code maps and the atom
// table only. It also records the task's wall time and emission count
// for the grounder's stats.
func (g *Grounder) runJoin(t *joinTask, truth func(AtomID) bool, emit func(emitEnv, []AtomID) error) error {
	start := time.Now()
	defer func() { t.elapsed += time.Since(start) }()
	counted := func(env emitEnv, bodyAtoms []AtomID) error {
		t.emitted++
		return emit(env, bodyAtoms)
	}
	if t.cr != nil {
		return g.runJoinCompiled(t, truth, counted)
	}
	return g.runJoinLegacy(t, truth, counted)
}

// runJoinLegacy is the map-binding join over decoded terms.
func (g *Grounder) runJoinLegacy(t *joinTask, truth func(AtomID) bool, emit func(emitEnv, []AtomID) error) error {
	env := &legacyEnv{g: g, rule: t.rule, binding: logic.NewBinding()}
	bodyAtoms := make([]AtomID, len(t.order))
	atom := t.rule.Body[t.order[0]]
	for i := range t.seedQuads {
		if err := g.bindQuad(t, 0, atom, t.t0bound, &t.seedQuads[i],
			env, bodyAtoms, truth, emit); err != nil {
			return err
		}
	}
	for _, id := range t.mainIDs {
		q := g.mainView.Fact(id)
		if err := g.bindQuad(t, 0, atom, t.t0bound, &q,
			env, bodyAtoms, truth, emit); err != nil {
			return err
		}
	}
	for _, id := range t.derivedIDs {
		q := g.derivedView.Fact(id)
		if err := g.bindQuad(t, 0, atom, t.t0bound, &q,
			env, bodyAtoms, truth, emit); err != nil {
			return err
		}
	}
	return nil
}

// bindQuad extends the binding with quad q matched at depth, evaluates
// the conditions that just became fully bound, recurses to the next join
// level, and undoes exactly the variables this step bound.
func (g *Grounder) bindQuad(t *joinTask, depth int,
	atom logic.QuadAtom, timeBound bool, q *rdf.Quad,
	env *legacyEnv, bodyAtoms []AtomID, truth func(AtomID) bool,
	emit func(emitEnv, []AtomID) error) error {

	binding := env.binding
	r, order, condAt := t.rule, t.order, t.condAt
	id, ok := g.atoms.Lookup(q.Fact())
	if !ok {
		return nil // fact added after setup; not part of the network
	}
	if !t.mode.admits(order[depth], id) {
		return nil // outside this seminaive pass's stratum
	}
	if truth != nil && !truth(id) {
		return nil
	}
	var boundObjs []string
	var boundTime string
	undo := func() {
		for _, v := range boundObjs {
			delete(binding.Objs, v)
		}
		if boundTime != "" {
			delete(binding.Times, boundTime)
		}
	}
	bindObj := func(t logic.Term, val rdf.Term) bool {
		if !t.IsVar() {
			return t.Const == val
		}
		if cur, ok := binding.Objs[t.Var]; ok {
			return cur == val
		}
		binding.Objs[t.Var] = val
		boundObjs = append(boundObjs, t.Var)
		return true
	}
	okb := bindObj(atom.S, q.Subject) && bindObj(atom.P, q.Predicate) && bindObj(atom.O, q.Object)
	if okb && !timeBound && atom.T.IsVar() {
		if cur, bound := binding.Times[atom.T.Var]; bound {
			okb = cur == q.Interval
		} else {
			binding.Times[atom.T.Var] = q.Interval
			boundTime = atom.T.Var
		}
	}
	if !okb {
		undo()
		return nil
	}
	for _, cond := range condAt[depth] {
		holds, err := cond.Eval(binding)
		if err != nil {
			undo()
			return fmt.Errorf("ground: rule %s: %w", r.Name, err)
		}
		if !holds {
			undo()
			return nil
		}
	}
	bodyAtoms[depth] = id
	err := g.descend(t, depth+1, env, bodyAtoms, truth, emit)
	undo()
	return err
}

// descend enumerates store matches for the body atom at depth (emitting
// when every atom is bound), binding each matched quad in turn.
func (g *Grounder) descend(t *joinTask, depth int,
	env *legacyEnv, bodyAtoms []AtomID, truth func(AtomID) bool,
	emit func(emitEnv, []AtomID) error) error {

	if depth == len(t.order) {
		return emit(env, bodyAtoms)
	}
	atom := t.rule.Body[t.order[depth]]
	pat, timeBound, err := g.patternFor(atom, env.binding)
	if err != nil {
		return err
	}
	var innerErr error
	visit := func(_ store.FactID, q rdf.Quad) bool {
		if err := g.bindQuad(t, depth, atom, timeBound, &q,
			env, bodyAtoms, truth, emit); err != nil {
			innerErr = err
			return false
		}
		return true
	}
	g.mainView.Match(pat, visit)
	if innerErr != nil {
		return innerErr
	}
	if g.derivedView.Len() > 0 {
		g.derivedView.Match(pat, visit)
	}
	return innerErr
}

// patternFor builds the most selective store pattern for a body atom
// under the current binding. timeBound reports whether the temporal
// dimension is already enforced by the pattern.
func (g *Grounder) patternFor(atom logic.QuadAtom, binding *logic.Binding) (store.Pattern, bool, error) {
	var pat store.Pattern
	fill := func(t logic.Term, dst *rdf.Term) {
		if !t.IsVar() {
			*dst = t.Const
		} else if v, ok := binding.Objs[t.Var]; ok {
			*dst = v
		}
	}
	fill(atom.S, &pat.S)
	fill(atom.P, &pat.P)
	fill(atom.O, &pat.O)
	switch atom.T.Kind {
	case logic.TimeVar:
		if iv, ok := binding.Times[atom.T.Var]; ok {
			pat.Time = store.TimeFilter{Kind: store.TimeEquals, Interval: iv}
			return pat, true, nil
		}
		return pat, false, nil
	case logic.TimeConst:
		pat.Time = store.TimeFilter{Kind: store.TimeEquals, Interval: atom.T.Const}
		return pat, true, nil
	default:
		return pat, false, fmt.Errorf("ground: body atom %s: time expressions are only allowed in rule heads", atom)
	}
}

// planOrder chooses a join order for the body atoms: greedily pick the
// atom with the most bound positions (constants or already-bound
// variables), breaking ties by original position. This sends selective
// atoms (shared subjects, constant predicates) through the store indexes
// first.
func planOrder(r *logic.Rule) ([]int, error) {
	n := len(r.Body)
	if n == 0 {
		return nil, fmt.Errorf("ground: rule %s has an empty body", r.Name)
	}
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := boundScore(r.Body[i], bound)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range r.Body[best].Vars(nil) {
			bound[v] = true
		}
	}
	return order, nil
}

func boundScore(a logic.QuadAtom, bound map[string]bool) int {
	score := 0
	terms := []logic.Term{a.S, a.P, a.O}
	weights := []int{3, 2, 2} // bound subjects are the cheapest index path
	for i, t := range terms {
		if !t.IsVar() || bound[t.Var] {
			score += weights[i]
		}
	}
	if a.T.Kind == logic.TimeConst || a.T.Kind == logic.TimeVar && bound[a.T.Var] {
		score++
	}
	return score
}

// scheduleConds assigns each condition to the earliest join depth at
// which all its variables are bound: one cumulative coverage pass over
// the order, then each condition's depth is the max first-bound depth of
// its variables.
func scheduleConds(r *logic.Rule, order []int) ([][]logic.Condition, error) {
	out := make([][]logic.Condition, len(order))
	firstDepth := make(map[string]int)
	var scratch []string
	for d, idx := range order {
		scratch = r.Body[idx].Vars(scratch[:0])
		for _, v := range scratch {
			if _, seen := firstDepth[v]; !seen {
				firstDepth[v] = d
			}
		}
	}
	for _, c := range r.Conds {
		d := 0
		ok := true
		for _, v := range c.CondVars(nil) {
			fd, bound := firstDepth[v]
			if !bound {
				ok = false
				break
			}
			if fd > d {
				d = fd
			}
		}
		if !ok {
			return nil, fmt.Errorf("ground: rule %s: condition %s has variables not bound by the body", r.Name, c)
		}
		out[d] = append(out[d], c)
	}
	return out, nil
}
