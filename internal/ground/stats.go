package ground

import (
	"sort"
	"time"
)

// GroundStats summarises the grounder's join work since the last
// TakeStats: wall time across all grounding phases plus a per-rule
// breakdown with the chosen join plans. The session solve path attaches
// it as repair.Stats.Ground; `tecore infer -explain-plan` prints it.
type GroundStats struct {
	// Total is wall time summed over the grounding phases that ran:
	// forward-chaining rounds, clause emission, and seminaive delta
	// passes (planning included).
	Total time.Duration
	// Compiled reports whether the selectivity-planned compiled pipeline
	// ran (false = the legacy boundness-ordered, string-keyed path).
	Compiled bool
	// Rules is the per-rule breakdown, sorted by rule name.
	Rules []RuleGroundStats
}

// RuleGroundStats is one rule's grounding profile.
type RuleGroundStats struct {
	// Rule is the rule or constraint name.
	Rule string
	// Order is the rule's most recent join plan: body-atom indexes in
	// join order (seminaive delta passes pin the delta position first).
	Order []int
	// Estimates are the planner's candidate-count estimates per join
	// depth for that plan (empty under the legacy planner).
	Estimates []float64
	// Candidates counts the depth-0 candidates fed into this rule's
	// joins across all phases.
	Candidates int64
	// Emitted counts groundings that reached emission: derived-head
	// candidates during closure, clause candidates during grounding.
	Emitted int64
	// Time is join wall time summed over this rule's tasks.
	Time time.Duration
	// Tasks is the number of join tasks run for this rule.
	Tasks int
}

// ruleStat returns (creating on first use) the mutable per-rule entry.
func (g *Grounder) ruleStat(name string) *RuleGroundStats {
	if g.statRules == nil {
		g.statRules = make(map[string]*RuleGroundStats)
	}
	rs, ok := g.statRules[name]
	if !ok {
		rs = &RuleGroundStats{Rule: name}
		g.statRules[name] = rs
	}
	return rs
}

// notePlan records a rule's chosen join order and estimates. Called at
// plan time (a sequential point); the latest plan wins, so after a fresh
// solve the entries show the full-grounding plans and after an
// incremental solve the delta-pass plans.
func (g *Grounder) notePlan(name string, order []int, est []float64) {
	rs := g.ruleStat(name)
	rs.Order = append(rs.Order[:0], order...)
	rs.Estimates = append(rs.Estimates[:0], est...)
}

// noteTaskStats folds per-task counters into the per-rule stats. Called
// at merge time (a sequential point); each task was touched by exactly
// one worker, so the reads need no synchronisation.
func (g *Grounder) noteTaskStats(tasks []joinTask) {
	for i := range tasks {
		t := &tasks[i]
		rs := g.ruleStat(t.rule.Name)
		rs.Tasks++
		rs.Time += t.elapsed
		rs.Candidates += int64(len(t.mainIDs) + len(t.derivedIDs) + len(t.seedQuads) + len(t.seedAtoms))
		rs.Emitted += t.emitted
	}
}

// TakeStats returns the grounding statistics accumulated since the last
// call and resets the counters. Never nil; a grounder that did no work
// returns zero totals and no rules.
func (g *Grounder) TakeStats() *GroundStats {
	gs := &GroundStats{Total: g.statTotal, Compiled: !g.Legacy}
	names := make([]string, 0, len(g.statRules))
	for n := range g.statRules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		gs.Rules = append(gs.Rules, *g.statRules[n])
	}
	g.statTotal = 0
	g.statRules = nil
	return gs
}
