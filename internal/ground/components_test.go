package ground

import (
	"math"
	"reflect"
	"testing"
)

func hardClause(rule string, atoms ...AtomID) Clause {
	c := Clause{Weight: math.Inf(1), Rule: rule}
	for _, a := range atoms {
		c.Lits = append(c.Lits, Lit{Atom: a, Neg: true})
	}
	return c
}

func compAtoms(comps []Component) [][]AtomID {
	out := make([][]AtomID, len(comps))
	for i, c := range comps {
		out[i] = c.Atoms
	}
	return out
}

func TestComponentsPartition(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		cs := NewClauseSet()
		if indexed {
			cs.EnableComponentIndex()
		}
		cs.Add(hardClause("a", 0, 1))
		cs.Add(hardClause("b", 1, 2))
		cs.Add(hardClause("c", 3, 4))
		comps := cs.Components([]AtomID{0, 1, 2, 3, 4, 5})
		want := [][]AtomID{{0, 1, 2}, {3, 4}, {5}}
		if got := compAtoms(comps); !reflect.DeepEqual(got, want) {
			t.Fatalf("indexed=%v: components = %v, want %v", indexed, got, want)
		}
		for i, key := range []AtomID{0, 3, 5} {
			if comps[i].Key != key {
				t.Fatalf("indexed=%v: component %d key = %d, want %d", indexed, i, comps[i].Key, key)
			}
		}
	}
}

func TestComponentsMergeBumpsGeneration(t *testing.T) {
	cs := NewClauseSet()
	cs.EnableComponentIndex()
	cs.Add(hardClause("a", 0, 1))
	cs.Add(hardClause("b", 2, 3))
	order := []AtomID{0, 1, 2, 3}
	before := cs.Components(order)
	if len(before) != 2 {
		t.Fatalf("expected 2 components, got %d", len(before))
	}
	cs.Add(hardClause("bridge", 1, 2))
	after := cs.Components(order)
	if len(after) != 1 {
		t.Fatalf("expected 1 merged component, got %d", len(after))
	}
	if after[0].Gen <= before[0].Gen || after[0].Gen <= before[1].Gen {
		t.Fatalf("merge did not advance the generation: %d vs %d/%d",
			after[0].Gen, before[0].Gen, before[1].Gen)
	}
	if !reflect.DeepEqual(after[0].Atoms, order) {
		t.Fatalf("merged atoms = %v", after[0].Atoms)
	}
}

func TestComponentsWeightMergeBumpsGeneration(t *testing.T) {
	cs := NewClauseSet()
	cs.EnableComponentIndex()
	cs.Add(Clause{Lits: []Lit{{Atom: 0, Neg: true}, {Atom: 1, Neg: true}}, Weight: 1, Rule: "r"})
	g1 := cs.Components([]AtomID{0, 1})[0].Gen
	// Same grounding again: weights merge, the subproblem changes.
	cs.Add(Clause{Lits: []Lit{{Atom: 0, Neg: true}, {Atom: 1, Neg: true}}, Weight: 1, Rule: "r"})
	g2 := cs.Components([]AtomID{0, 1})[0].Gen
	if g2 <= g1 {
		t.Fatalf("weight merge did not advance the generation: %d vs %d", g2, g1)
	}
}

func TestComponentsLazySplit(t *testing.T) {
	cs := NewClauseSet()
	cs.EnableComponentIndex()
	cs.Add(hardClause("a", 0, 1))
	cs.Add(hardClause("b", 1, 2))
	cs.Add(hardClause("c", 3, 4))
	all := []AtomID{0, 1, 2, 3, 4}
	before := cs.Components(all)
	if len(before) != 2 {
		t.Fatalf("expected 2 components, got %d", len(before))
	}
	// Retract atom 1: both its clauses tombstone and {0,1,2} splits.
	cs.RemoveAtoms([]AtomID{1})
	after := cs.Components([]AtomID{0, 2, 3, 4})
	want := [][]AtomID{{0}, {2}, {3, 4}}
	if got := compAtoms(after); !reflect.DeepEqual(got, want) {
		t.Fatalf("components after split = %v, want %v", got, want)
	}
	if after[0].Gen == before[0].Gen || after[1].Gen == before[0].Gen || after[0].Gen == after[1].Gen {
		t.Fatalf("split pieces did not get fresh distinct generations: %+v (before %d)",
			after, before[0].Gen)
	}
	// The untouched component keeps its generation (cacheable).
	if after[2].Gen != before[1].Gen {
		t.Fatalf("untouched component generation changed: %d vs %d", after[2].Gen, before[1].Gen)
	}
	// Revive the grounding: the component reunites under a fresh gen.
	cs.Add(hardClause("a", 0, 1))
	revived := cs.Components(all[:3])
	if len(revived) != 2 || !reflect.DeepEqual(revived[0].Atoms, []AtomID{0, 1}) {
		t.Fatalf("revival did not re-merge: %v", compAtoms(revived))
	}
}

func TestTouchAtomBumpsGeneration(t *testing.T) {
	cs := NewClauseSet()
	cs.EnableComponentIndex()
	cs.Add(hardClause("a", 0, 1))
	order := []AtomID{0, 1, 2}
	before := cs.Components(order)
	cs.TouchAtom(1)
	cs.TouchAtom(2) // isolated singleton
	after := cs.Components(order)
	if after[0].Gen <= before[0].Gen {
		t.Fatalf("touch did not advance the clause component generation: %d vs %d",
			after[0].Gen, before[0].Gen)
	}
	if after[1].Gen <= before[1].Gen {
		t.Fatalf("touch did not advance the singleton generation: %d vs %d",
			after[1].Gen, before[1].Gen)
	}
	if got, want := compAtoms(after), compAtoms(before); !reflect.DeepEqual(got, want) {
		t.Fatalf("touch changed membership: %v vs %v", got, want)
	}
}
