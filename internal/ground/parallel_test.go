package ground

import (
	"strings"
	"testing"

	"repro/internal/kgen"
	"repro/internal/logic"
	"repro/internal/rulelang"
	"repro/internal/store"
)

// footballFixture builds a mid-sized noisy store plus a program with
// both constraints and a forward-chaining inference rule, the shape that
// exercises every parallel code path (Close rounds, chunked joins,
// pending-head interning).
func footballFixture(t testing.TB) (*store.Store, *logic.Program) {
	t.Helper()
	ds := kgen.Football(kgen.FootballConfig{Players: 120, NoiseRatio: 0.4, Seed: 7})
	st := store.New()
	if err := st.AddGraph(ds.Graph); err != nil {
		t.Fatalf("load store: %v", err)
	}
	prog, err := rulelang.Parse(kgen.FootballProgram + `
pf1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
pf2: quad(x, worksFor, y, t) ^ duration(t) >= 4 -> quad(x, type, Veteran, t) w = 0.8
`)
	if err != nil {
		t.Fatalf("parse program: %v", err)
	}
	return st, prog
}

// groundDump renders everything parallelism could perturb: the atom
// table (ids and keys, in id order) and the clause list (in emission
// order).
func groundDump(g *Grounder, cs *ClauseSet) string {
	var b strings.Builder
	for i := 0; i < g.Atoms().Len(); i++ {
		info := g.Atoms().Info(AtomID(i))
		b.WriteString(info.Key.String())
		if info.Evidence {
			b.WriteByte('*')
		}
		b.WriteByte('\n')
	}
	b.WriteString("--\n")
	for i := range cs.Clauses() {
		b.WriteString(cs.Clauses()[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelGroundingByteIdentical is the tentpole invariant: Close +
// GroundProgram produce byte-identical atom tables and clause sets at
// every parallelism level.
func TestParallelGroundingByteIdentical(t *testing.T) {
	st, prog := footballFixture(t)
	var baseline string
	var baseDerived int
	for _, p := range []int{1, 2, 4, 8} {
		g := New(st)
		g.Parallelism = p
		derived, err := g.Close(prog)
		if err != nil {
			t.Fatalf("parallelism %d: Close: %v", p, err)
		}
		cs, err := g.GroundProgram(prog)
		if err != nil {
			t.Fatalf("parallelism %d: GroundProgram: %v", p, err)
		}
		dump := groundDump(g, cs)
		if p == 1 {
			baseline, baseDerived = dump, derived
			if derived == 0 {
				t.Fatal("fixture derived no atoms; inference rules not exercised")
			}
			if cs.Len() == 0 {
				t.Fatal("fixture emitted no clauses")
			}
			continue
		}
		if derived != baseDerived {
			t.Errorf("parallelism %d: derived %d atoms, sequential derived %d", p, derived, baseDerived)
		}
		if dump != baseline {
			t.Errorf("parallelism %d: grounding output differs from sequential (%d vs %d bytes)",
				p, len(dump), len(baseline))
		}
	}
}

// TestParallelGroundViolatedByteIdentical covers the cutting-plane
// primitive: truth-filtered grounding must also be reproducible.
func TestParallelGroundViolatedByteIdentical(t *testing.T) {
	st, prog := footballFixture(t)
	var baseline string
	for _, p := range []int{1, 8} {
		g := New(st)
		g.Parallelism = p
		if _, err := g.Close(prog); err != nil {
			t.Fatalf("parallelism %d: Close: %v", p, err)
		}
		// A deterministic, nontrivial truth assignment: every third atom
		// false.
		truth := func(a AtomID) bool { return a%3 != 0 }
		cs, err := g.GroundViolated(prog, truth)
		if err != nil {
			t.Fatalf("parallelism %d: GroundViolated: %v", p, err)
		}
		dump := groundDump(g, cs)
		if p == 1 {
			baseline = dump
			continue
		}
		if dump != baseline {
			t.Errorf("parallelism %d: violated grounding differs from sequential", p)
		}
	}
}

// TestParallelismZeroMeansAllCores: the default (zero) setting must
// behave like any explicit worker count.
func TestParallelismZeroMeansAllCores(t *testing.T) {
	st, prog := footballFixture(t)
	seq := New(st)
	seq.Parallelism = 1
	if _, err := seq.Close(prog); err != nil {
		t.Fatal(err)
	}
	csSeq, err := seq.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	def := New(st)
	if _, err := def.Close(prog); err != nil {
		t.Fatal(err)
	}
	csDef, err := def.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if groundDump(seq, csSeq) != groundDump(def, csDef) {
		t.Error("default parallelism output differs from sequential")
	}
}
