package ground

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/temporal"
)

// Head resolution states reported by emitEnv.resolveHeadAtom.
const (
	headStateMiss     uint8 = iota // empty time expression or unbound head: no obligation
	headStateResolved              // head atom already interned; id is valid
	headStatePending               // head not interned; key carries the statement
)

// emitEnv is the view of the current grounding handed to emit callbacks.
// It abstracts over the legacy map binding and the compiled frame so
// Close, CloseDelta and groundTasks each have a single emission path.
type emitEnv interface {
	// resolveHeadAtom instantiates the rule's head atom under the current
	// grounding. Only meaningful for HeadAtom rules.
	resolveHeadAtom() (uint8, AtomID, rdf.FactKey)
	// evalHeadCond evaluates the rule's head condition under the current
	// grounding. Only meaningful for HeadCond rules.
	evalHeadCond() (bool, error)
}

// legacyEnv adapts the map-binding join to emitEnv.
type legacyEnv struct {
	g       *Grounder
	rule    *logic.Rule
	binding *logic.Binding
}

func (e *legacyEnv) resolveHeadAtom() (uint8, AtomID, rdf.FactKey) {
	key, ok := e.rule.Head.Atom.Resolve(e.binding)
	if !ok {
		return headStateMiss, 0, rdf.FactKey{}
	}
	if id, seen := e.g.atoms.Lookup(key); seen {
		return headStateResolved, id, rdf.FactKey{}
	}
	return headStatePending, 0, key
}

func (e *legacyEnv) evalHeadCond() (bool, error) {
	return e.rule.Head.Cond.Eval(e.binding)
}

// compiledEnv adapts the frame join to emitEnv.
type compiledEnv struct {
	g  *Grounder
	cr *compiledRule
	fr *logic.Frame
}

// headCode resolves one head position to its atom code (0 when a
// constant is absent from the network).
func headCode(ct cterm, fr *logic.Frame) store.TermID {
	if ct.slot >= 0 {
		return store.TermID(fr.Objs[ct.slot])
	}
	return ct.code
}

// headTerm materialises one head position as an RDF term for a pending
// fact key.
func headTerm(ct cterm, konst rdf.Term, fr *logic.Frame, d *store.Dict) rdf.Term {
	if ct.slot >= 0 {
		return d.Decode(store.TermID(fr.Objs[ct.slot]))
	}
	return konst
}

func (e *compiledEnv) resolveHeadAtom() (uint8, AtomID, rdf.FactKey) {
	h := &e.cr.head
	if !h.valid {
		return headStateMiss, 0, rdf.FactKey{}
	}
	iv, ok := h.time(e.fr)
	if !ok {
		return headStateMiss, 0, rdf.FactKey{}
	}
	s, p, o := headCode(h.s, e.fr), headCode(h.p, e.fr), headCode(h.o, e.fr)
	if s != 0 && p != 0 && o != 0 {
		if id, ok := e.g.atoms.lookupKey(atomKey{s: s, p: p, o: o, iv: iv}); ok {
			return headStateResolved, id, rdf.FactKey{}
		}
	}
	d := e.g.atoms.dict
	return headStatePending, 0, rdf.FactKey{
		S:        headTerm(h.s, h.sT, e.fr, d),
		P:        headTerm(h.p, h.pT, e.fr, d),
		O:        headTerm(h.o, h.oT, e.fr, d),
		Interval: iv,
	}
}

func (e *compiledEnv) evalHeadCond() (bool, error) {
	return e.cr.headCond(e.fr)
}

// acodes is one join candidate in atom-code space: the interned atom and
// its statement codes.
type acodes struct {
	s, p, o store.TermID
	iv      temporal.Interval
	id      AtomID
}

// toAtomCodes translates a stored fact's codes into atom-code space via
// the given store->atom table and resolves the interned atom. ok is
// false when any term is unpaired or the statement was never interned —
// the fact is not part of the ground network (legacy: Lookup miss).
func (g *Grounder) toAtomCodes(fc store.FactCodes, toAtom []store.TermID) (acodes, bool) {
	if int(fc.S) >= len(toAtom) || int(fc.P) >= len(toAtom) || int(fc.O) >= len(toAtom) {
		return acodes{}, false
	}
	s, p, o := toAtom[fc.S], toAtom[fc.P], toAtom[fc.O]
	if s == 0 || p == 0 || o == 0 {
		return acodes{}, false
	}
	id, ok := g.atoms.lookupKey(atomKey{s: s, p: p, o: o, iv: fc.Interval})
	if !ok {
		return acodes{}, false
	}
	return acodes{s: s, p: p, o: o, iv: fc.Interval, id: id}, true
}

// codePatternAt builds the store-level code pattern for the join depth's
// body atom under the current frame, translating bound atom codes
// through toStore. ok=false means no fact in that store can match: a
// needed term is absent from the store's dictionary (NoTerm must never
// leak into a pattern as "unknown term" — it would read as a wildcard).
func codePatternAt(cq *cquad, fr *logic.Frame, toStore []store.TermID) (store.CodePattern, bool) {
	var cp store.CodePattern
	fill := func(ct *cterm, dst *store.TermID) bool {
		ac := ct.code
		if ct.slot >= 0 {
			ac = store.TermID(fr.Objs[ct.slot])
			if ac == 0 {
				return true // unbound variable: wildcard
			}
		}
		if ac == 0 || int(ac) >= len(toStore) || toStore[ac] == 0 {
			return false
		}
		*dst = toStore[ac]
		return true
	}
	if !fill(&cq.s, &cp.S) || !fill(&cq.p, &cp.P) || !fill(&cq.o, &cp.O) {
		return cp, false
	}
	if cq.tSlot >= 0 {
		if fr.TimeSet[cq.tSlot] {
			cp.Time = store.TimeFilter{Kind: store.TimeEquals, Interval: fr.Times[cq.tSlot]}
		}
	} else {
		cp.Time = store.TimeFilter{Kind: store.TimeEquals, Interval: cq.tConst}
	}
	return cp, true
}

// runJoinCompiled is runJoin over a compiled rule: frames and term codes
// instead of map bindings and terms. Same read-only discipline — store
// views, atom table and code maps only.
func (g *Grounder) runJoinCompiled(t *joinTask, truth func(AtomID) bool, emit func(emitEnv, []AtomID) error) error {
	cr := t.cr
	fr := logic.NewFrame(cr.sm)
	env := &compiledEnv{g: g, cr: cr, fr: fr}
	bodyAtoms := make([]AtomID, len(cr.quads))
	for _, a := range t.seedAtoms {
		k := g.atoms.keys[a]
		m := acodes{s: k.s, p: k.p, o: k.o, iv: k.iv, id: a}
		if err := g.bindCodes(t, 0, env, &m, truth, bodyAtoms, emit); err != nil {
			return err
		}
	}
	for _, id := range t.mainIDs {
		m, ok := g.toAtomCodes(g.mainView.FactCodes(id), g.maps.mainToAtom)
		if !ok {
			continue
		}
		if err := g.bindCodes(t, 0, env, &m, truth, bodyAtoms, emit); err != nil {
			return err
		}
	}
	for _, id := range t.derivedIDs {
		m, ok := g.toAtomCodes(g.derivedView.FactCodes(id), g.maps.derivedToAtom)
		if !ok {
			continue
		}
		if err := g.bindCodes(t, 0, env, &m, truth, bodyAtoms, emit); err != nil {
			return err
		}
	}
	return nil
}

// bindPos extends the frame with one matched position: constants compare
// by code, bound variables check consistency, unbound variables bind and
// are recorded in slots for the caller's undo. A plain function (not a
// closure) so the per-quad hot path allocates nothing.
func bindPos(fr *logic.Frame, ct *cterm, code store.TermID, slots *[3]int32, n *int8) bool {
	if ct.slot < 0 {
		return ct.code == code // code 0 (absent constant) matches nothing
	}
	if cur := fr.Objs[ct.slot]; cur != 0 {
		return cur == uint32(code)
	}
	fr.Objs[ct.slot] = uint32(code)
	slots[*n] = ct.slot
	*n++
	return true
}

// unbindObjs undoes the object bindings recorded in slots[:n].
func unbindObjs(fr *logic.Frame, slots *[3]int32, n int8) {
	for i := int8(0); i < n; i++ {
		fr.Objs[slots[i]] = 0
	}
}

// unbindAll undoes the object bindings and, when tslot >= 0, the time
// binding this step made.
func unbindAll(fr *logic.Frame, slots *[3]int32, n int8, tslot int32) {
	unbindObjs(fr, slots, n)
	if tslot >= 0 {
		fr.TimeSet[tslot] = false
	}
}

// bindCodes is bindQuad over codes: extend the frame with candidate m at
// depth, evaluate the conditions that just became fully bound, recurse,
// undo exactly what this step bound.
func (g *Grounder) bindCodes(t *joinTask, depth int, env *compiledEnv, m *acodes,
	truth func(AtomID) bool, bodyAtoms []AtomID, emit func(emitEnv, []AtomID) error) error {

	cr := t.cr
	cq := &cr.quads[depth]
	if !t.mode.admits(cq.bodyPos, m.id) {
		return nil // outside this seminaive pass's stratum
	}
	if truth != nil && !truth(m.id) {
		return nil
	}
	fr := env.fr
	var slots [3]int32
	var n int8
	if !bindPos(fr, &cq.s, m.s, &slots, &n) ||
		!bindPos(fr, &cq.p, m.p, &slots, &n) ||
		!bindPos(fr, &cq.o, m.o, &slots, &n) {
		unbindObjs(fr, &slots, n)
		return nil
	}
	tslot := int32(-1)
	if cq.tSlot >= 0 {
		if fr.TimeSet[cq.tSlot] {
			if fr.Times[cq.tSlot] != m.iv {
				unbindObjs(fr, &slots, n)
				return nil
			}
		} else {
			fr.Times[cq.tSlot] = m.iv
			fr.TimeSet[cq.tSlot] = true
			tslot = cq.tSlot
		}
	} else if cq.tConst != m.iv {
		unbindObjs(fr, &slots, n)
		return nil
	}
	for _, cond := range cr.conds[depth] {
		holds, err := cond(fr)
		if err != nil {
			unbindAll(fr, &slots, n, tslot)
			return fmt.Errorf("ground: rule %s: %w", cr.rule.Name, err)
		}
		if !holds {
			unbindAll(fr, &slots, n, tslot)
			return nil
		}
	}
	bodyAtoms[depth] = m.id
	err := g.descendCodes(t, depth+1, env, truth, bodyAtoms, emit)
	unbindAll(fr, &slots, n, tslot)
	return err
}

// descendCodes enumerates store matches for the join depth's body atom
// (emitting when every atom is bound), translating each match into atom
// codes and binding it in turn.
func (g *Grounder) descendCodes(t *joinTask, depth int, env *compiledEnv,
	truth func(AtomID) bool, bodyAtoms []AtomID, emit func(emitEnv, []AtomID) error) error {

	if depth == len(t.cr.quads) {
		return emit(env, bodyAtoms)
	}
	cq := &t.cr.quads[depth]
	fr := env.fr
	var innerErr error
	if cp, ok := codePatternAt(cq, fr, g.maps.atomToMain); ok {
		g.mainView.MatchCodes(cp, func(_ store.FactID, fc store.FactCodes) bool {
			m, ok := g.toAtomCodes(fc, g.maps.mainToAtom)
			if !ok {
				return true
			}
			if err := g.bindCodes(t, depth, env, &m, truth, bodyAtoms, emit); err != nil {
				innerErr = err
				return false
			}
			return true
		})
		if innerErr != nil {
			return innerErr
		}
	}
	if g.derivedView.Len() > 0 {
		if cp, ok := codePatternAt(cq, fr, g.maps.atomToDerived); ok {
			g.derivedView.MatchCodes(cp, func(_ store.FactID, fc store.FactCodes) bool {
				m, ok := g.toAtomCodes(fc, g.maps.derivedToAtom)
				if !ok {
					return true
				}
				if err := g.bindCodes(t, depth, env, &m, truth, bodyAtoms, emit); err != nil {
					innerErr = err
					return false
				}
				return true
			})
		}
	}
	return innerErr
}
