// Package mln implements MAP inference for Markov logic networks with
// numerical constraints — the role played by nRockIt in TeCoRe.
//
// The ground network comes from the grounding engine: evidence atoms
// carry log-odds priors derived from fact confidences, rule and
// constraint groundings contribute weighted clauses. MAP — the most
// probable world — is computed as weighted partial MaxSAT, either over
// the fully grounded network or by cutting-plane inference (CPI): solve
// with evidence priors only, lazily ground the formulas the current
// solution violates, and repeat until nothing new is violated. CPI is the
// same device RockIt uses to keep ground networks small.
package mln

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/maxsat"
)

// Options tunes MAP inference.
type Options struct {
	// CuttingPlane enables lazy violation-driven grounding instead of
	// grounding the full program up front.
	CuttingPlane bool
	// MaxCPIRounds bounds cutting-plane iterations (default 30).
	MaxCPIRounds int
	// EvidenceClamp bounds confidences away from 0 and 1 before the
	// log-odds transform so certain facts stay finite (default 1e-3).
	EvidenceClamp float64
	// KeepBias is a small bonus added to every evidence atom's prior so
	// that asserted facts — even at confidence 0.5, which maps to zero
	// log-odds — are kept unless a constraint or stronger evidence pushes
	// them out (default 0.05). The paper's Figure 7 keeps the
	// confidence-0.5 Palermo fact; this bias reproduces that behaviour.
	KeepBias float64
	// DerivedPrior is the closed-world penalty against deriving atoms
	// with no rule support (default 0.01).
	DerivedPrior float64
	// Parallelism bounds the worker pools used for grounding and for
	// local-search restarts: 0 means GOMAXPROCS, 1 forces the sequential
	// path. The MAP state is identical at every setting.
	Parallelism int
	// ComponentSolve partitions the ground network into independent
	// conflict components and solves each with its own engine,
	// concurrently, instead of one monolithic MaxSAT problem (see
	// components.go). Ignored under CuttingPlane, which keeps no
	// persistent clause set to partition.
	ComponentSolve bool
	// ComponentExactLimit is the largest component (in atoms) handed to
	// the exact branch-and-bound engine in component mode; larger
	// components use local search (default 48).
	ComponentExactLimit int
	// MaxSAT tunes the underlying solver.
	MaxSAT maxsat.Options
}

func (o Options) withDefaults() Options {
	if o.MaxCPIRounds == 0 {
		o.MaxCPIRounds = 30
	}
	if o.EvidenceClamp == 0 {
		o.EvidenceClamp = 1e-3
	}
	if o.KeepBias == 0 {
		o.KeepBias = 0.05
	}
	if o.DerivedPrior == 0 {
		o.DerivedPrior = 0.01
	}
	if o.ComponentExactLimit == 0 {
		o.ComponentExactLimit = 48
	}
	return o
}

// Logit maps a confidence to the weight of its evidence unit clause:
// ln(c / (1-c)), with c clamped to [eps, 1-eps]. Confidence 0.5 maps to
// zero (no prior); higher confidences push the atom true, lower push it
// false.
func Logit(conf, eps float64) float64 {
	if conf < eps {
		conf = eps
	}
	if conf > 1-eps {
		conf = 1 - eps
	}
	return math.Log(conf / (1 - conf))
}

// Result is the MAP state over the ground network.
type Result struct {
	// Truth assigns a boolean to every atom id.
	Truth []bool
	// Cost is the violated soft weight of the final MaxSAT problem.
	Cost float64
	// HardSatisfied reports whether all hard constraints hold.
	HardSatisfied bool
	// Optimal reports whether the exact engine proved optimality of the
	// final problem.
	Optimal bool
	// Rounds is the number of cutting-plane iterations (1 when CPI is
	// off).
	Rounds int
	// GroundClauses is the number of distinct rule clauses grounded.
	GroundClauses int
	// Runtime is the wall-clock inference time.
	Runtime time.Duration
	// RuleViolations counts violated groundings per rule name in the
	// final state (soft rules only; hard violations imply infeasibility).
	RuleViolations map[string]int
	// Components summarises the component-decomposed solve; nil when the
	// monolithic path ran.
	Components *ground.ComponentStats
	// TruthDelta reports that Truth was produced by the dirty-only merge
	// over a maintained plan: atoms outside the plan's DirtyComps carry
	// the previous solve's truth bit-for-bit, so downstream consumers
	// with state keyed to the same plan generation may restrict their
	// own passes to the planner's change set.
	TruthDelta bool
}

// TrueAtom reports the truth of atom id in the MAP state.
func (r *Result) TrueAtom(id ground.AtomID) bool { return r.Truth[id] }

// MAP computes the most probable world for the program over the
// grounder's evidence. The grounder must be freshly constructed over the
// evidence store; MAP forward-chains inference rules itself.
func MAP(g *ground.Grounder, prog *logic.Program, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	if opts.MaxSAT.Parallelism == 0 {
		opts.MaxSAT.Parallelism = opts.Parallelism
	}
	start := time.Now()
	if _, err := g.Close(prog); err != nil {
		return nil, fmt.Errorf("mln: %w", err)
	}

	if opts.CuttingPlane {
		res, err := solveCPI(g, prog, evidenceClauses(g, opts), opts)
		if err != nil {
			return nil, err
		}
		res.Runtime = time.Since(start)
		res.RuleViolations, err = countViolations(g, prog, res.Truth)
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	cs, err := g.GroundProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("mln: %w", err)
	}
	var res *Result
	if opts.ComponentSolve {
		res, err = solveComponents(g, cs, opts, nil, nil, nil)
	} else {
		res, err = solveGround(g, cs, opts, nil)
	}
	if err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	if res.RuleViolations == nil {
		res.RuleViolations = violationsFromClauses(cs, res.Truth)
	}
	return res, nil
}

// MAPGround computes the MAP state over an already-closed grounder and
// its persistent clause set — the incremental path. Forward chaining and
// grounding are the caller's responsibility (CloseDelta/GroundDelta);
// warm, when non-nil, is the previous MAP state indexed by atom id and
// is handed to the MaxSAT engine as a warm start. The problem is built
// in canonical atom order, so the result is identical to a fresh
// solveGround over an equal atom/clause state.
func MAPGround(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool) (*Result, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	if opts.MaxSAT.Parallelism == 0 {
		opts.MaxSAT.Parallelism = opts.Parallelism
	}
	start := time.Now()
	res, err := solveGround(g, cs, opts, warm)
	if err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	res.RuleViolations = violationsFromClauses(cs, res.Truth)
	return res, nil
}

// solveGround builds the weighted MaxSAT instance in canonical variable
// order — live evidence atoms by fact id, derived atoms by statement key
// — so that any two grounder states with equal live atoms and clauses
// produce byte-identical problems, regardless of interning history. The
// solution is mapped back to atom-id space (retracted atoms stay false).
func solveGround(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool) (*Result, error) {
	atoms := g.Atoms()
	order := ground.CanonicalAtoms(atoms)
	varOf := ground.CanonicalVarMap(atoms, order)
	problem := &maxsat.Problem{NumVars: len(order)}
	for v, a := range order {
		info := atoms.Info(a)
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			switch {
			case w > 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(v)}}, Weight: w})
			case w < 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(v), Neg: true}}, Weight: -w})
			}
			continue
		}
		if opts.DerivedPrior > 0 {
			problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(v), Neg: true}}, Weight: opts.DerivedPrior})
		}
	}
	nClauses := cs.Len()
	canon, _ := ground.CanonicalClauses(cs, varOf)
	for _, c := range canon {
		problem.Clauses = append(problem.Clauses, toMaxsatClause(c))
	}
	mopts := opts.MaxSAT
	if warm != nil {
		w := make([]bool, len(order))
		for v, a := range order {
			if int(a) < len(warm) {
				w[v] = warm[a]
			}
		}
		mopts.Warm = w
	}
	sol, err := maxsat.Solve(problem, mopts)
	if err != nil {
		return nil, fmt.Errorf("mln: %w", err)
	}
	truth := make([]bool, atoms.Len())
	for v, a := range order {
		truth[a] = sol.Assignment[v]
	}
	return &Result{
		Truth:         truth,
		Cost:          sol.Cost,
		HardSatisfied: sol.HardSatisfied,
		Optimal:       sol.Optimal,
		Rounds:        1,
		GroundClauses: nClauses,
	}, nil
}

// violationsFromClauses counts the violated groundings per rule straight
// off the clause set: a grounding is violated exactly when all its
// literals are false, the same condition GroundViolated re-derives by
// re-joining. Reading it from the clause set is O(clauses) and works on
// the incremental path's persistent set.
func violationsFromClauses(cs *ground.ClauseSet, truth []bool) map[string]int {
	out := make(map[string]int)
	cs.ForEach(func(c *ground.Clause) bool {
		if !c.Satisfied(func(a ground.AtomID) bool { return truth[a] }) {
			out[c.Rule]++
		}
		return true
	})
	return out
}

// evidenceClauses builds the prior unit clauses: log-odds units for
// evidence atoms, closed-world penalties for derived atoms.
func evidenceClauses(g *ground.Grounder, opts Options) []maxsat.Clause {
	atoms := g.Atoms()
	out := make([]maxsat.Clause, 0, atoms.Len())
	for i := 0; i < atoms.Len(); i++ {
		info := atoms.Info(ground.AtomID(i))
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			switch {
			case w > 0:
				out = append(out, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(i)}}, Weight: w})
			case w < 0:
				out = append(out, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(i), Neg: true}}, Weight: -w})
			}
			continue
		}
		if opts.DerivedPrior > 0 {
			out = append(out, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(i), Neg: true}}, Weight: opts.DerivedPrior})
		}
	}
	return out
}

func toMaxsatClause(c ground.Clause) maxsat.Clause {
	mc := maxsat.Clause{Weight: c.Weight, Lits: make([]maxsat.Lit, len(c.Lits))}
	for i, l := range c.Lits {
		mc.Lits[i] = maxsat.Lit{Var: int32(l.Atom), Neg: l.Neg}
	}
	return mc
}

func solveCPI(g *ground.Grounder, prog *logic.Program, base []maxsat.Clause, opts Options) (*Result, error) {
	seen := make(map[string]bool)
	var ruleClauses []maxsat.Clause
	res := &Result{}
	for round := 1; ; round++ {
		if round > opts.MaxCPIRounds {
			return nil, fmt.Errorf("mln: cutting-plane inference did not converge in %d rounds", opts.MaxCPIRounds)
		}
		problem := &maxsat.Problem{NumVars: g.Atoms().Len(),
			Clauses: append(append([]maxsat.Clause{}, base...), ruleClauses...)}
		sol, err := maxsat.Solve(problem, opts.MaxSAT)
		if err != nil {
			return nil, fmt.Errorf("mln: %w", err)
		}
		res.Truth = sol.Assignment
		res.Cost = sol.Cost
		res.HardSatisfied = sol.HardSatisfied
		res.Optimal = sol.Optimal
		res.Rounds = round
		res.GroundClauses = len(ruleClauses)

		truth := func(a ground.AtomID) bool { return sol.Assignment[a] }
		violated, err := g.GroundViolated(prog, truth)
		if err != nil {
			return nil, fmt.Errorf("mln: %w", err)
		}
		added := 0
		for _, c := range violated.Clauses() {
			mc := toMaxsatClause(c)
			key := clauseKey(c)
			if seen[key] {
				continue
			}
			seen[key] = true
			ruleClauses = append(ruleClauses, mc)
			added++
		}
		if added == 0 {
			res.GroundClauses = len(ruleClauses)
			return res, nil
		}
	}
}

func clauseKey(c ground.Clause) string {
	b := make([]byte, 0, 8*len(c.Lits)+len(c.Rule))
	for _, l := range c.Lits {
		v := uint32(l.Atom)<<1 | boolBit(l.Neg)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	b = append(b, c.Rule...)
	return string(b)
}

func boolBit(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

// countViolations grounds the program against the final truth and counts
// violated groundings per rule.
func countViolations(g *ground.Grounder, prog *logic.Program, truth []bool) (map[string]int, error) {
	violated, err := g.GroundViolated(prog, func(a ground.AtomID) bool { return truth[a] })
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, c := range violated.Clauses() {
		out[c.Rule]++
	}
	return out, nil
}
