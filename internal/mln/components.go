package mln

import (
	"fmt"
	"time"

	"repro/internal/ground"
	"repro/internal/maxsat"
	"repro/internal/par"
)

// Component-decomposed MAP inference.
//
// Constraints only connect atoms that co-occur in a ground clause, so
// the ground network splits into independent conflict components and the
// MaxSAT objective decomposes exactly across them: solving each
// component separately and concatenating the assignments yields an
// optimum of the whole network. The orchestrator below exploits that
// three ways:
//
//   - engine specialisation: small components go to the exact
//     branch-and-bound (provably optimal), large ones to local search;
//     a component whose exact search exhausts its node limit falls back
//     to local search rather than keeping the partial result;
//   - parallelism: components solve concurrently on the shared worker
//     pool, with a sequential merge in deterministic component order, so
//     the MAP state is identical at every Parallelism setting;
//   - incremental caching: a ComponentCache keyed by (component key,
//     generation, membership) lets a delta re-solve only the components
//     it dirtied — re-solve cost is proportional to the conflict
//     actually affected, not the knowledge graph.
//
// Per-component subproblems are built in the same canonical order as the
// monolithic path (solveGround) restricted to the component, so when
// both sides solve exactly — where the optimum is unique — the
// component-decomposed MAP state is identical to the monolithic one.

// ComponentCache carries per-component MAP solutions across the
// incremental engine's solves. The zero value is not usable; construct
// with NewComponentCache. Not safe for concurrent use.
type ComponentCache struct {
	entries map[ground.AtomID]*compEntry
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{entries: make(map[ground.AtomID]*compEntry)}
}

type compEntry struct {
	gen     uint64
	atoms   []ground.AtomID
	truth   []bool // aligned with atoms
	engine  string
	optimal bool
}

// compResult is one component's outcome in a solve.
type compResult struct {
	truth    []bool
	engine   string
	optimal  bool
	fallback bool
	cached   bool
}

// MAPGroundComponents computes the MAP state over an already-closed
// grounder and its persistent clause set by solving each conflict
// component separately — the component-decomposed counterpart of
// MAPGround. warm, when non-nil, is the previous MAP state by atom id
// (used as a per-component warm start); cache, when non-nil, is
// consulted for unchanged components and updated with this solve's
// solutions.
func MAPGroundComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache) (*Result, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	res, err := solveComponents(g, cs, opts, warm, cache)
	if err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	res.RuleViolations = violationsFromClauses(cs, res.Truth)
	return res, nil
}

// solveComponents partitions the ground network, solves each component
// with the engine its size calls for, and merges the assignments in
// deterministic component order. The MAP state is identical to the
// monolithic path's whenever both solve exactly; the reported cost can
// differ from the monolithic number only in floating-point summation
// order (clauses are folded in stable slot order rather than the
// monolithic problem order).
func solveComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache) (*Result, error) {
	atoms := g.Atoms()
	order := ground.CanonicalAtoms(atoms)
	varOf := ground.CanonicalVarMap(atoms, order)
	comps := cs.Components(order)

	// Var → (component, local index); components list their atoms in
	// canonical order, so local numbering is the canonical order
	// restricted to the component.
	compOfVar := make([]int32, len(order))
	localOfVar := make([]int32, len(order))
	for ci := range comps {
		for li, a := range comps[ci].Atoms {
			v := varOf[a]
			compOfVar[v] = int32(ci)
			localOfVar[v] = int32(li)
		}
	}

	// Split reusable from dirty components.
	results := make([]compResult, len(comps))
	var dirty []int
	for i := range comps {
		if e := cacheLookup(cache, &comps[i]); e != nil {
			results[i] = compResult{truth: e.truth, engine: "cached", optimal: e.optimal, cached: true}
			continue
		}
		dirty = append(dirty, i)
	}

	// Collect each dirty component's clauses. With the atom index the
	// gather walks only the dirty components' own clauses — incremental
	// solve work stays proportional to what the delta dirtied — and
	// produces, per component, the same canonical clause sequence the
	// index-less global path computes (ComponentClauses' contract).
	compClauses := make([][]ground.Clause, len(comps))
	local := func(a ground.AtomID) int32 { return localOfVar[varOf[a]] }
	if !cs.HasAtomIndex() {
		canon, _ := ground.CanonicalClauses(cs, varOf)
		for _, c := range canon {
			ci := compOfVar[c.Lits[0].Atom]
			compClauses[ci] = append(compClauses[ci], c)
		}
		// Canonical literals index canonical variable space; remap to the
		// component-local numbering the subproblems use.
		for ci := range compClauses {
			for k := range compClauses[ci] {
				lits := compClauses[ci][k].Lits
				remapped := make([]ground.Lit, len(lits))
				for i, l := range lits {
					remapped[i] = ground.Lit{Atom: ground.AtomID(localOfVar[l.Atom]), Neg: l.Neg}
				}
				compClauses[ci][k].Lits = remapped
			}
		}
	}

	// Solve dirty components concurrently; each subsolve runs
	// sequentially (Parallelism 1), the pool parallelises across
	// components. Workers only read the clause set (gather) and the atom
	// table — all index maintenance happened at sequential points.
	workers := par.Workers(opts.Parallelism)
	errs := make([]error, len(dirty))
	par.Do(len(dirty), workers, func(k int) {
		i := dirty[k]
		clauses := compClauses[i]
		if cs.HasAtomIndex() {
			clauses, _ = cs.ComponentClauses(comps[i].Atoms, local)
		}
		results[i], errs[k] = solveComponent(atoms, &comps[i], clauses, opts, warm)
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mln: %w", err)
		}
	}

	// Deterministic merge in component order + statistics.
	truth := make([]bool, atoms.Len())
	stats := &ground.ComponentStats{}
	optimal := true
	for i := range comps {
		r := &results[i]
		for li, a := range comps[i].Atoms {
			truth[a] = r.truth[li]
		}
		stats.Observe(len(comps[i].Atoms))
		if r.cached {
			stats.Reused++
			stats.Engine("cached")
		} else {
			stats.Solved++
			stats.Engine(r.engine)
			if r.fallback {
				stats.Fallbacks++
			}
		}
		optimal = optimal && r.optimal
	}
	if cache != nil {
		fresh := make(map[ground.AtomID]*compEntry, len(comps))
		for i := range comps {
			fresh[comps[i].Key] = &compEntry{
				gen: comps[i].Gen, atoms: comps[i].Atoms,
				truth: results[i].truth, engine: results[i].engine,
				optimal: results[i].optimal,
			}
		}
		cache.entries = fresh
	}

	cost, hardOK := evaluateState(atoms, order, cs, truth, opts)
	return &Result{
		Truth:         truth,
		Cost:          cost,
		HardSatisfied: hardOK,
		Optimal:       optimal,
		Rounds:        1,
		GroundClauses: cs.Len(),
		Components:    stats,
	}, nil
}

// cacheLookup returns the cached entry when the component's subproblem
// is provably unchanged: same key, same generation, same membership.
func cacheLookup(cache *ComponentCache, comp *ground.Component) *compEntry {
	if cache == nil {
		return nil
	}
	e, ok := cache.entries[comp.Key]
	if !ok || e.gen != comp.Gen || len(e.atoms) != len(comp.Atoms) {
		return nil
	}
	for i, a := range comp.Atoms {
		if e.atoms[i] != a {
			return nil
		}
	}
	return e
}

// solveComponent builds the component's weighted MaxSAT subproblem from
// its clauses (already in dense local variable numbering) and solves it:
// exact branch-and-bound for components within ComponentExactLimit
// (falling back to local search when the node limit is exhausted), local
// search otherwise.
func solveComponent(atoms *ground.AtomTable, comp *ground.Component, clauses []ground.Clause, opts Options, warm []bool) (compResult, error) {
	n := len(comp.Atoms)
	problem := &maxsat.Problem{NumVars: n}
	for li, a := range comp.Atoms {
		info := atoms.Info(a)
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			switch {
			case w > 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li)}}, Weight: w})
			case w < 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li), Neg: true}}, Weight: -w})
			}
			continue
		}
		if opts.DerivedPrior > 0 {
			problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li), Neg: true}}, Weight: opts.DerivedPrior})
		}
	}
	for _, c := range clauses {
		mc := maxsat.Clause{Weight: c.Weight, Lits: make([]maxsat.Lit, len(c.Lits))}
		for i, l := range c.Lits {
			mc.Lits[i] = maxsat.Lit{Var: int32(l.Atom), Neg: l.Neg}
		}
		problem.Clauses = append(problem.Clauses, mc)
	}

	mopts := opts.MaxSAT
	mopts.Parallelism = 1
	if warm != nil {
		w := make([]bool, n)
		for li, a := range comp.Atoms {
			if int(a) < len(warm) {
				w[li] = warm[a]
			}
		}
		mopts.Warm = w
	}

	if n <= opts.ComponentExactLimit {
		sol, complete, err := maxsat.Exact(problem, mopts)
		if err != nil {
			return compResult{}, err
		}
		if complete {
			return compResult{truth: sol.Assignment, engine: maxsat.EngineExact, optimal: true}, nil
		}
		// Node limit exhausted: the partial branch-and-bound result is
		// untrustworthy — fall back to local search for this component
		// and record the fallback.
		sol, err = maxsat.Local(problem, mopts)
		if err != nil {
			return compResult{}, err
		}
		return compResult{truth: sol.Assignment, engine: maxsat.EngineFallback, fallback: true}, nil
	}
	sol, err := maxsat.Local(problem, mopts)
	if err != nil {
		return compResult{}, err
	}
	return compResult{truth: sol.Assignment, engine: maxsat.EngineLocal}, nil
}

// evaluateState computes the violated soft weight and hard feasibility
// of the merged assignment in a fixed order — priors in canonical atom
// order, then live clauses in stable slot order — so the numbers are
// identical at every parallelism setting (and equal to the monolithic
// path's up to floating-point summation order).
func evaluateState(atoms *ground.AtomTable, order []ground.AtomID, cs *ground.ClauseSet, truth []bool, opts Options) (cost float64, hardOK bool) {
	hardOK = true
	for _, a := range order {
		info := atoms.Info(a)
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			if w > 0 && !truth[a] {
				cost += w
			} else if w < 0 && truth[a] {
				cost += -w
			}
			continue
		}
		if opts.DerivedPrior > 0 && truth[a] {
			cost += opts.DerivedPrior
		}
	}
	cs.ForEach(func(c *ground.Clause) bool {
		if !c.Satisfied(func(a ground.AtomID) bool { return truth[a] }) {
			if c.Hard() {
				hardOK = false
			} else {
				cost += c.Weight
			}
		}
		return true
	})
	return cost, hardOK
}
