package mln

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/maxsat"
	"repro/internal/par"
)

// Component-decomposed MAP inference.
//
// Constraints only connect atoms that co-occur in a ground clause, so
// the ground network splits into independent conflict components and the
// MaxSAT objective decomposes exactly across them: solving each
// component separately and concatenating the assignments yields an
// optimum of the whole network. The orchestration — partitioning, the
// reusable/dirty split, concurrent scheduling with a deterministic
// merge order, and the (key, generation, membership) solution cache —
// lives in internal/engine and is shared with the PSL backend and the
// repair read-out; this file contributes only the MaxSAT kernel:
//
//   - engine specialisation: small components go to the exact
//     branch-and-bound (provably optimal), large ones to local search;
//     a component whose exact search exhausts its node limit falls back
//     to local search rather than keeping the partial result;
//   - per-component subproblems built in the same canonical order as
//     the monolithic path (solveGround) restricted to the component, so
//     when both sides solve exactly — where the optimum is unique — the
//     component-decomposed MAP state is identical to the monolithic one.
//
// The solve-level read-out (violated soft weight, hard feasibility,
// per-rule violation counts, component-size statistics) is likewise a
// sum of per-component contributions, so the cache carries each
// component's contribution alongside its assignment and maintains the
// running totals — a delta solve over a maintained plan touches only
// the components the planner dirtied instead of re-folding every atom
// and clause.

// ComponentCache carries per-component MAP solutions across the
// incremental engine's solves, plus the running solve-level aggregate
// of their read-out contributions (see stateAgg). Construct with
// NewComponentCache. Not safe for concurrent use.
type ComponentCache struct {
	comps *engine.Cache[compEntry]
	agg   stateAgg
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{comps: engine.NewCache[compEntry]()}
}

// store returns the underlying per-component solution cache; nil-safe.
func (c *ComponentCache) store() *engine.Cache[compEntry] {
	if c == nil {
		return nil
	}
	return c.comps
}

// compEval is one component's contribution to the solve-level read-out:
// its violated soft weight, hard feasibility and violation counts (viol
// is nil when the component violates nothing), folded with the same
// per-term arithmetic the monolithic evaluation uses — priors in the
// component's canonical atom order, clauses in stable slot order.
type compEval struct {
	cost   float64
	hardOK bool
	viol   map[string]int
}

type compEntry struct {
	truth   []bool // aligned with the component's atoms
	optimal bool
	eval    compEval
}

// compResult is one component's outcome in a solve.
type compResult struct {
	truth    []bool
	engine   string
	optimal  bool
	fallback bool
	eval     compEval
}

// stateAgg is the running sum of every cached component's read-out
// contribution, valid when it covers exactly the cache's entries for
// the plan generation gen. Integer fields (hard violations, optimality,
// violation counts, the size multiset) are maintained exactly; cost is
// maintained by subtract-and-add and may drift from a fresh fold in the
// last floating-point bits — the cost is never compared bitwise across
// solve paths, and every full solve reseeds it from scratch.
type stateAgg struct {
	valid      bool
	gen        uint64
	cost       float64
	hardBad    int
	nonOptimal int
	viol       map[string]int
	sizeCount  map[int]int
	largest    int
	count      int
}

func (g *stateAgg) add(truth []bool, optimal bool, ev *compEval) {
	g.cost += ev.cost
	if !ev.hardOK {
		g.hardBad++
	}
	if !optimal {
		g.nonOptimal++
	}
	for r, c := range ev.viol {
		g.viol[r] += c
	}
	size := len(truth)
	g.sizeCount[size]++
	if size > g.largest {
		g.largest = size
	}
	g.count++
}

func (g *stateAgg) remove(e *compEntry) {
	g.cost -= e.eval.cost
	if !e.eval.hardOK {
		g.hardBad--
	}
	if !e.optimal {
		g.nonOptimal--
	}
	for r, c := range e.eval.viol {
		if g.viol[r] -= c; g.viol[r] == 0 {
			delete(g.viol, r)
		}
	}
	size := len(e.truth)
	if g.sizeCount[size]--; g.sizeCount[size] == 0 {
		delete(g.sizeCount, size)
		for g.largest > 0 && g.sizeCount[g.largest] == 0 {
			g.largest--
		}
	}
	g.count--
}

// reseed rebuilds the aggregate from this solve's per-component results
// (in component order) and marks it valid for plan generation gen.
func (g *stateAgg) reseed(results []compResult, gen uint64) {
	*g = stateAgg{
		valid: true,
		gen:   gen,
		viol:  make(map[string]int),
		// Sizes cluster on few distinct values; the multiset stays tiny.
		sizeCount: make(map[int]int),
	}
	for i := range results {
		g.add(results[i].truth, results[i].optimal, &results[i].eval)
	}
}

// histogram converts the exact size multiset into the bucketed
// ComponentStats form.
func (g *stateAgg) histogram() map[string]int {
	if g.count == 0 {
		return nil
	}
	h := make(map[string]int, len(g.sizeCount))
	for size, c := range g.sizeCount {
		h[ground.SizeBucket(size)] += c
	}
	return h
}

// deltaReady reports whether the cache can drive a dirty-only solve
// over plan: the aggregate (and therefore the entry set it covers) is
// exactly one sync behind, so this sync's change set (DirtyComps,
// Retired, RetractedAtoms) is the complete difference.
func (c *ComponentCache) deltaReady(plan *engine.Plan) bool {
	return c != nil && plan.Maintained() && c.agg.valid && c.agg.gen+1 == plan.Gen()
}

// MAPGroundComponents computes the MAP state over an already-closed
// grounder and its persistent clause set by solving each conflict
// component separately — the component-decomposed counterpart of
// MAPGround. warm, when non-nil, is the previous MAP state by atom id
// (used as a per-component warm start); cache, when non-nil, is
// consulted for unchanged components and updated with this solve's
// solutions. plan, when non-nil, is the shared decomposition built by
// the caller (so solver and repair stages see the identical partition);
// nil builds one here.
func MAPGroundComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache, plan *engine.Plan) (*Result, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	res, err := solveComponents(g, cs, opts, warm, cache, plan)
	if err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	if res.RuleViolations == nil {
		res.RuleViolations = violationsFromClauses(cs, res.Truth)
	}
	return res, nil
}

// solveComponents partitions the ground network, solves each component
// with the engine its size calls for, and merges the assignments in
// deterministic component order. The MAP state is identical to the
// monolithic path's whenever both solve exactly; the reported cost can
// differ from the monolithic number only in floating-point summation
// order (contributions are folded per component rather than in the
// monolithic problem order). When the plan is maintained and the cache
// aggregate is current, the dirty-only path handles just the components
// the planner re-listed.
func solveComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache, plan *engine.Plan) (*Result, error) {
	atoms := g.Atoms()
	if plan == nil {
		plan = engine.NewPlan(atoms, cs)
	}
	if warm != nil && cache.deltaReady(plan) {
		return solveComponentsDelta(atoms, cs, opts, warm, cache, plan)
	}

	results, cached, err := engine.Run(plan, opts.Parallelism, cache.store(),
		func(i int, e compEntry) (compResult, bool) {
			return compResult{truth: e.truth, engine: "cached", optimal: e.optimal, eval: e.eval}, true
		},
		func(i int) (compResult, error) {
			clauses, _ := plan.Clauses(i)
			return solveComponent(atoms, &plan.Comps[i], clauses, opts, warm)
		})
	if err != nil {
		return nil, fmt.Errorf("mln: %w", err)
	}

	// Deterministic merge in component order + statistics.
	truth := make([]bool, atoms.Len())
	stats := &ground.ComponentStats{}
	for i := range plan.Comps {
		r := &results[i]
		for li, a := range plan.Comps[i].Atoms {
			truth[a] = r.truth[li]
		}
		plan.Observe(stats, i, cached[i], r.engine, r.fallback)
	}
	// A maintained plan names the retired component keys, so the cache
	// churns one entry per dirty component instead of rebuilding.
	if store := cache.store(); store != nil {
		if plan.Maintained() {
			for _, key := range plan.Retired() {
				store.Drop(key)
			}
			for i := range plan.Comps {
				if !cached[i] {
					store.Put(&plan.Comps[i], compEntry{truth: results[i].truth, optimal: results[i].optimal, eval: results[i].eval})
				}
			}
		} else {
			store.Replace(plan.Comps, func(i int) compEntry {
				return compEntry{truth: results[i].truth, optimal: results[i].optimal, eval: results[i].eval}
			})
		}
		// The full fold anchors the aggregate; subsequent consecutive
		// syncs maintain it dirty-only.
		cache.agg.reseed(results, plan.Gen())
	}

	agg := &cache.agg
	if cache.store() == nil {
		// No cache to carry the aggregate: fold the totals locally.
		var local stateAgg
		local.reseed(results, plan.Gen())
		agg = &local
	}
	return resultFromAgg(agg, cs, stats, truth), nil
}

// solveComponentsDelta is the dirty-only counterpart of the full merge.
// With the plan maintained and the cache aggregate exactly one sync
// behind, the planner's change set bounds everything that can differ
// from the previous solve: components outside DirtyComps have the same
// generation, membership and clause subproblem, so their cached truth
// and read-out contribution are reused without being re-verified (the
// full solves anchoring the aggregate prove the base case; consecutive
// generations chain it). The previous MAP state is carried forward,
// retracted atoms are pinned false, and only dirty components are
// re-solved and merged.
func solveComponentsDelta(atoms *ground.AtomTable, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache, plan *engine.Plan) (*Result, error) {
	dirty := plan.DirtyComps()
	store := cache.comps
	agg := &cache.agg

	// Forward the previous MAP state into this solve's truth domain.
	truth := make([]bool, atoms.Len())
	copy(truth, warm)
	for _, a := range plan.RetractedAtoms() {
		if int(a) < len(truth) {
			truth[a] = false
		}
	}

	// Retired components: subtract their contributions and drop them.
	for _, key := range plan.Retired() {
		if e, ok := store.Peek(key); ok {
			agg.remove(&e)
		}
		store.Drop(key)
	}

	// Dirty components: reuse entries the generation proves unchanged,
	// solve the rest concurrently — the same reusable/dirty split and
	// kernel as the full path, restricted to the planner's change set.
	results := make([]compResult, len(dirty))
	cached := make([]bool, len(dirty))
	var solve []int
	for k, ci := range dirty {
		if e, ok := store.Lookup(&plan.Comps[ci]); ok {
			results[k] = compResult{truth: e.truth, engine: "cached", optimal: e.optimal, eval: e.eval}
			cached[k] = true
			continue
		}
		solve = append(solve, k)
	}
	workers := par.Workers(opts.Parallelism)
	errs := make([]error, len(solve))
	par.Do(len(solve), workers, func(j int) {
		k := solve[j]
		ci := int(dirty[k])
		clauses, _ := plan.Clauses(ci)
		results[k], errs[j] = solveComponent(atoms, &plan.Comps[ci], clauses, opts, warm)
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mln: %w", err)
		}
	}

	// Merge and maintain cache + aggregate, in component order.
	stats := &ground.ComponentStats{}
	for k, ci := range dirty {
		comp := &plan.Comps[ci]
		r := &results[k]
		for li, a := range comp.Atoms {
			truth[a] = r.truth[li]
		}
		if cached[k] {
			continue // entry and its aggregate contribution stand
		}
		if old, ok := store.Peek(comp.Key); ok {
			agg.remove(&old)
		}
		e := compEntry{truth: r.truth, optimal: r.optimal, eval: r.eval}
		agg.add(e.truth, e.optimal, &e.eval)
		store.Put(comp, e)
		stats.Solved++
		stats.Engine(r.engine)
		if r.fallback {
			stats.Fallbacks++
		}
	}
	agg.gen = plan.Gen()

	// Every component outside the dirty set is an implicit cache reuse.
	stats.Count = agg.count
	stats.Largest = agg.largest
	stats.SizeHistogram = agg.histogram()
	if reused := agg.count - stats.Solved; reused > 0 {
		stats.Reused = reused
		if stats.Engines == nil {
			stats.Engines = make(map[string]int)
		}
		stats.Engines["cached"] += reused
	}
	res := resultFromAgg(agg, cs, stats, truth)
	res.TruthDelta = true
	return res, nil
}

// resultFromAgg assembles the solve Result from the aggregate totals.
// The violation map is copied: callers hold Results across solves while
// the aggregate keeps mutating.
func resultFromAgg(agg *stateAgg, cs *ground.ClauseSet, stats *ground.ComponentStats, truth []bool) *Result {
	viol := make(map[string]int, len(agg.viol))
	for r, c := range agg.viol {
		viol[r] = c
	}
	return &Result{
		Truth:          truth,
		Cost:           agg.cost,
		HardSatisfied:  agg.hardBad == 0,
		Optimal:        agg.nonOptimal == 0,
		Rounds:         1,
		GroundClauses:  cs.Len(),
		RuleViolations: viol,
		Components:     stats,
	}
}

// solveComponent builds the component's weighted MaxSAT subproblem from
// its clauses (already in dense local variable numbering) and solves it:
// exact branch-and-bound for components within ComponentExactLimit
// (falling back to local search when the node limit is exhausted), local
// search otherwise. The returned result carries the component's
// read-out contribution evaluated on the final assignment.
func solveComponent(atoms *ground.AtomTable, comp *ground.Component, clauses []ground.Clause, opts Options, warm []bool) (compResult, error) {
	n := len(comp.Atoms)
	problem := &maxsat.Problem{NumVars: n}
	for li, a := range comp.Atoms {
		info := atoms.Info(a)
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			switch {
			case w > 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li)}}, Weight: w})
			case w < 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li), Neg: true}}, Weight: -w})
			}
			continue
		}
		if opts.DerivedPrior > 0 {
			problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li), Neg: true}}, Weight: opts.DerivedPrior})
		}
	}
	for _, c := range clauses {
		mc := maxsat.Clause{Weight: c.Weight, Lits: make([]maxsat.Lit, len(c.Lits))}
		for i, l := range c.Lits {
			mc.Lits[i] = maxsat.Lit{Var: int32(l.Atom), Neg: l.Neg}
		}
		problem.Clauses = append(problem.Clauses, mc)
	}

	mopts := opts.MaxSAT
	mopts.Parallelism = 1 // the pool parallelises across components
	if warm != nil {
		w := make([]bool, n)
		for li, a := range comp.Atoms {
			if int(a) < len(warm) {
				w[li] = warm[a]
			}
		}
		mopts.Warm = w
	}

	var r compResult
	if n <= opts.ComponentExactLimit {
		sol, complete, err := maxsat.Exact(problem, mopts)
		if err != nil {
			return compResult{}, err
		}
		if complete {
			r = compResult{truth: sol.Assignment, engine: maxsat.EngineExact, optimal: true}
		} else {
			// Node limit exhausted: the partial branch-and-bound result is
			// untrustworthy — fall back to local search for this component
			// and record the fallback.
			sol, err = maxsat.Local(problem, mopts)
			if err != nil {
				return compResult{}, err
			}
			r = compResult{truth: sol.Assignment, engine: maxsat.EngineFallback, fallback: true}
		}
	} else {
		sol, err := maxsat.Local(problem, mopts)
		if err != nil {
			return compResult{}, err
		}
		r = compResult{truth: sol.Assignment, engine: maxsat.EngineLocal}
	}
	r.eval = evalComponent(atoms, comp, clauses, r.truth, opts)
	return r, nil
}

// evalComponent computes the component's read-out contribution on the
// local assignment: priors in the component's canonical atom order,
// then the component's clauses in stable slot order — the same per-term
// arithmetic the monolithic evaluation folds globally, so summing the
// contributions in component order reproduces its numbers up to
// floating-point summation order (and the integer counts exactly).
func evalComponent(atoms *ground.AtomTable, comp *ground.Component, clauses []ground.Clause, truth []bool, opts Options) compEval {
	ev := compEval{hardOK: true}
	for li, a := range comp.Atoms {
		if atoms.IsEvidence(a) {
			w := Logit(atoms.Confidence(a), opts.EvidenceClamp) + opts.KeepBias
			if w > 0 && !truth[li] {
				ev.cost += w
			} else if w < 0 && truth[li] {
				ev.cost += -w
			}
			continue
		}
		if opts.DerivedPrior > 0 && truth[li] {
			ev.cost += opts.DerivedPrior
		}
	}
	for i := range clauses {
		c := &clauses[i]
		if !c.Satisfied(func(a ground.AtomID) bool { return truth[a] }) {
			if c.Hard() {
				ev.hardOK = false
			} else {
				ev.cost += c.Weight
			}
			if ev.viol == nil {
				ev.viol = make(map[string]int)
			}
			ev.viol[c.Rule]++
		}
	}
	return ev
}
