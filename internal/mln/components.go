package mln

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/maxsat"
)

// Component-decomposed MAP inference.
//
// Constraints only connect atoms that co-occur in a ground clause, so
// the ground network splits into independent conflict components and the
// MaxSAT objective decomposes exactly across them: solving each
// component separately and concatenating the assignments yields an
// optimum of the whole network. The orchestration — partitioning, the
// reusable/dirty split, concurrent scheduling with a deterministic
// merge order, and the (key, generation, membership) solution cache —
// lives in internal/engine and is shared with the PSL backend and the
// repair read-out; this file contributes only the MaxSAT kernel:
//
//   - engine specialisation: small components go to the exact
//     branch-and-bound (provably optimal), large ones to local search;
//     a component whose exact search exhausts its node limit falls back
//     to local search rather than keeping the partial result;
//   - per-component subproblems built in the same canonical order as
//     the monolithic path (solveGround) restricted to the component, so
//     when both sides solve exactly — where the optimum is unique — the
//     component-decomposed MAP state is identical to the monolithic one.

// ComponentCache carries per-component MAP solutions across the
// incremental engine's solves. Construct with NewComponentCache. Not
// safe for concurrent use.
type ComponentCache = engine.Cache[compEntry]

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache { return engine.NewCache[compEntry]() }

type compEntry struct {
	truth   []bool // aligned with the component's atoms
	optimal bool
}

// compResult is one component's outcome in a solve.
type compResult struct {
	truth    []bool
	engine   string
	optimal  bool
	fallback bool
}

// MAPGroundComponents computes the MAP state over an already-closed
// grounder and its persistent clause set by solving each conflict
// component separately — the component-decomposed counterpart of
// MAPGround. warm, when non-nil, is the previous MAP state by atom id
// (used as a per-component warm start); cache, when non-nil, is
// consulted for unchanged components and updated with this solve's
// solutions. plan, when non-nil, is the shared decomposition built by
// the caller (so solver and repair stages see the identical partition);
// nil builds one here.
func MAPGroundComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache, plan *engine.Plan) (*Result, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	res, err := solveComponents(g, cs, opts, warm, cache, plan)
	if err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	res.RuleViolations = violationsFromClauses(cs, res.Truth)
	return res, nil
}

// solveComponents partitions the ground network, solves each component
// with the engine its size calls for, and merges the assignments in
// deterministic component order. The MAP state is identical to the
// monolithic path's whenever both solve exactly; the reported cost can
// differ from the monolithic number only in floating-point summation
// order (clauses are folded in stable slot order rather than the
// monolithic problem order).
func solveComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm []bool, cache *ComponentCache, plan *engine.Plan) (*Result, error) {
	atoms := g.Atoms()
	if plan == nil {
		plan = engine.NewPlan(atoms, cs)
	}

	results, cached, err := engine.Run(plan, opts.Parallelism, cache,
		func(i int, e compEntry) (compResult, bool) {
			return compResult{truth: e.truth, engine: "cached", optimal: e.optimal}, true
		},
		func(i int) (compResult, error) {
			clauses, _ := plan.Clauses(i)
			return solveComponent(atoms, &plan.Comps[i], clauses, opts, warm)
		})
	if err != nil {
		return nil, fmt.Errorf("mln: %w", err)
	}

	// Deterministic merge in component order + statistics.
	truth := make([]bool, atoms.Len())
	stats := &ground.ComponentStats{}
	optimal := true
	for i := range plan.Comps {
		r := &results[i]
		for li, a := range plan.Comps[i].Atoms {
			truth[a] = r.truth[li]
		}
		plan.Observe(stats, i, cached[i], r.engine, r.fallback)
		optimal = optimal && r.optimal
	}
	cache.Replace(plan.Comps, func(i int) compEntry {
		return compEntry{truth: results[i].truth, optimal: results[i].optimal}
	})

	cost, hardOK := evaluateState(atoms, plan.Order, cs, truth, opts)
	return &Result{
		Truth:         truth,
		Cost:          cost,
		HardSatisfied: hardOK,
		Optimal:       optimal,
		Rounds:        1,
		GroundClauses: cs.Len(),
		Components:    stats,
	}, nil
}

// solveComponent builds the component's weighted MaxSAT subproblem from
// its clauses (already in dense local variable numbering) and solves it:
// exact branch-and-bound for components within ComponentExactLimit
// (falling back to local search when the node limit is exhausted), local
// search otherwise.
func solveComponent(atoms *ground.AtomTable, comp *ground.Component, clauses []ground.Clause, opts Options, warm []bool) (compResult, error) {
	n := len(comp.Atoms)
	problem := &maxsat.Problem{NumVars: n}
	for li, a := range comp.Atoms {
		info := atoms.Info(a)
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			switch {
			case w > 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li)}}, Weight: w})
			case w < 0:
				problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li), Neg: true}}, Weight: -w})
			}
			continue
		}
		if opts.DerivedPrior > 0 {
			problem.Clauses = append(problem.Clauses, maxsat.Clause{Lits: []maxsat.Lit{{Var: int32(li), Neg: true}}, Weight: opts.DerivedPrior})
		}
	}
	for _, c := range clauses {
		mc := maxsat.Clause{Weight: c.Weight, Lits: make([]maxsat.Lit, len(c.Lits))}
		for i, l := range c.Lits {
			mc.Lits[i] = maxsat.Lit{Var: int32(l.Atom), Neg: l.Neg}
		}
		problem.Clauses = append(problem.Clauses, mc)
	}

	mopts := opts.MaxSAT
	mopts.Parallelism = 1 // the pool parallelises across components
	if warm != nil {
		w := make([]bool, n)
		for li, a := range comp.Atoms {
			if int(a) < len(warm) {
				w[li] = warm[a]
			}
		}
		mopts.Warm = w
	}

	if n <= opts.ComponentExactLimit {
		sol, complete, err := maxsat.Exact(problem, mopts)
		if err != nil {
			return compResult{}, err
		}
		if complete {
			return compResult{truth: sol.Assignment, engine: maxsat.EngineExact, optimal: true}, nil
		}
		// Node limit exhausted: the partial branch-and-bound result is
		// untrustworthy — fall back to local search for this component
		// and record the fallback.
		sol, err = maxsat.Local(problem, mopts)
		if err != nil {
			return compResult{}, err
		}
		return compResult{truth: sol.Assignment, engine: maxsat.EngineFallback, fallback: true}, nil
	}
	sol, err := maxsat.Local(problem, mopts)
	if err != nil {
		return compResult{}, err
	}
	return compResult{truth: sol.Assignment, engine: maxsat.EngineLocal}, nil
}

// evaluateState computes the violated soft weight and hard feasibility
// of the merged assignment in a fixed order — priors in canonical atom
// order, then live clauses in stable slot order — so the numbers are
// identical at every parallelism setting (and equal to the monolithic
// path's up to floating-point summation order).
func evaluateState(atoms *ground.AtomTable, order []ground.AtomID, cs *ground.ClauseSet, truth []bool, opts Options) (cost float64, hardOK bool) {
	hardOK = true
	for _, a := range order {
		info := atoms.Info(a)
		if info.Evidence {
			w := Logit(info.Conf, opts.EvidenceClamp) + opts.KeepBias
			if w > 0 && !truth[a] {
				cost += w
			} else if w < 0 && truth[a] {
				cost += -w
			}
			continue
		}
		if opts.DerivedPrior > 0 && truth[a] {
			cost += opts.DerivedPrior
		}
	}
	cs.ForEach(func(c *ground.Clause) bool {
		if !c.Satisfied(func(a ground.AtomID) bool { return truth[a] }) {
			if c.Hard() {
				hardOK = false
			} else {
				cost += c.Weight
			}
		}
		return true
	})
	return cost, hardOK
}
