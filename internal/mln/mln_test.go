package mln

import (
	"math"
	"testing"

	"repro/internal/ground"
	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

func figure1Store(t testing.TB) *store.Store {
	t.Helper()
	g, err := rdf.ParseGraphString(`
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	return st
}

func findAtom(t testing.TB, g *ground.Grounder, compact string) ground.AtomID {
	t.Helper()
	for i := 0; i < g.Atoms().Len(); i++ {
		if g.Atoms().Info(ground.AtomID(i)).Key.String() == compact {
			return ground.AtomID(i)
		}
	}
	t.Fatalf("atom %q not found", compact)
	return -1
}

func TestLogit(t *testing.T) {
	if got := Logit(0.5, 1e-3); got != 0 {
		t.Errorf("Logit(0.5) = %g", got)
	}
	if got := Logit(0.9, 1e-3); math.Abs(got-math.Log(9)) > 1e-12 {
		t.Errorf("Logit(0.9) = %g, want ln 9", got)
	}
	if got := Logit(1.0, 1e-3); math.IsInf(got, 1) || got < 6 {
		t.Errorf("Logit(1.0) = %g, want finite and large", got)
	}
	if got := Logit(0.0, 1e-3); math.IsInf(got, -1) || got > -6 {
		t.Errorf("Logit(0.0) = %g", got)
	}
	if got := Logit(0.7, 1e-3) + Logit(0.3, 1e-3); math.Abs(got) > 1e-12 {
		t.Errorf("logit should be antisymmetric around 0.5, sum = %g", got)
	}
}

// TestRunningExample reproduces Figure 7: constraint c2 removes the
// Napoli fact (weight 0.6) because it clashes with Chelsea (weight 0.9);
// all other facts survive.
func TestRunningExample(t *testing.T) {
	for _, cpi := range []bool{false, true} {
		st := figure1Store(t)
		g := ground.New(st)
		prog := rulelang.MustParse(
			"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
		res, err := MAP(g, prog, Options{CuttingPlane: cpi})
		if err != nil {
			t.Fatalf("cpi=%v: MAP: %v", cpi, err)
		}
		if !res.HardSatisfied {
			t.Fatalf("cpi=%v: hard constraints violated", cpi)
		}
		napoli := findAtom(t, g, "(CR, coach, Napoli, [2001,2003])")
		if res.TrueAtom(napoli) {
			t.Errorf("cpi=%v: Napoli fact should be removed", cpi)
		}
		for _, keep := range []string{
			"(CR, coach, Chelsea, [2000,2004])",
			"(CR, coach, Leicester, [2015,2017])",
			"(CR, playsFor, Palermo, [1984,1986])",
			"(CR, birthDate, 1951, [1951,2017])",
		} {
			if !res.TrueAtom(findAtom(t, g, keep)) {
				t.Errorf("cpi=%v: fact %s should be kept", cpi, keep)
			}
		}
		if len(res.RuleViolations) != 0 {
			t.Errorf("cpi=%v: final state violates %v", cpi, res.RuleViolations)
		}
	}
}

// TestInferenceExpandsKG: f1 derives worksFor facts in the MAP state.
func TestInferenceExpandsKG(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	prog := rulelang.MustParse("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	worksFor := findAtom(t, g, "(CR, worksFor, Palermo, [1984,1986])")
	if !res.TrueAtom(worksFor) {
		t.Error("derived worksFor atom should be true (rule weight 2.5 > closed-world prior)")
	}
}

// TestDerivedPriorSuppressesUnsupported: without rule support a derived
// atom stays false.
func TestDerivedPriorSuppressesUnsupported(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	// Rule whose body never matches: nothing derives, but force an atom
	// into the table manually to simulate an unsupported candidate.
	prog := rulelang.MustParse("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
	extra := g.Atoms().Intern(rdf.FactKey{S: rdf.NewIRI("CR"), P: rdf.NewIRI("ghost"),
		O: rdf.NewIRI("X"), Interval: temporal.MustNew(1, 2)})
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueAtom(extra) {
		t.Error("unsupported atom should be false under the closed-world prior")
	}
}

// TestConflictBetweenInferenceAndConstraint: deriving the head would
// violate a hard constraint against strong evidence, so MAP prefers to
// drop the weaker body fact.
func TestConflictBetweenInferenceAndConstraint(t *testing.T) {
	st := store.New()
	st.Add(rdf.NewQuad("A", "playsFor", "X", temporal.MustNew(2000, 2001), 0.55))
	st.Add(rdf.NewQuad("A", "bannedFrom", "X", temporal.MustNew(2000, 2001), 0.95))
	g := ground.New(st)
	prog := rulelang.MustParse(`
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = inf
c:  quad(x, worksFor, y, t) ^ quad(x, bannedFrom, y, t') ^ overlap(t, t') -> false w = inf
`)
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HardSatisfied {
		t.Fatal("hard constraints violated")
	}
	plays := findAtom(t, g, "(A, playsFor, X, [2000,2001])")
	banned := findAtom(t, g, "(A, bannedFrom, X, [2000,2001])")
	if res.TrueAtom(plays) {
		t.Error("weak playsFor fact should be dropped (its hard consequence clashes)")
	}
	if !res.TrueAtom(banned) {
		t.Error("strong bannedFrom fact should be kept")
	}
}

// TestCPIMatchesFullGrounding on a chain of conflicts.
func TestCPIMatchesFullGrounding(t *testing.T) {
	st := store.New()
	teams := []string{"T1", "T2", "T3", "T4", "T5", "T6"}
	for i, team := range teams {
		conf := 0.55 + float64(i%3)*0.15
		st.Add(rdf.NewQuad("P", "coach", team, temporal.MustNew(int64(2000+i), int64(2002+i)), conf))
	}
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")

	gFull := ground.New(st)
	full, err := MAP(gFull, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gCPI := ground.New(st)
	cpi, err := MAP(gCPI, prog, Options{CuttingPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	if !full.HardSatisfied || !cpi.HardSatisfied {
		t.Fatal("both modes must be feasible")
	}
	if math.Abs(full.Cost-cpi.Cost) > 1e-9 {
		t.Errorf("full cost %g != CPI cost %g", full.Cost, cpi.Cost)
	}
	if cpi.GroundClauses > full.GroundClauses {
		t.Errorf("CPI grounded %d clauses, full grounding %d", cpi.GroundClauses, full.GroundClauses)
	}
	if cpi.Rounds < 2 {
		t.Errorf("CPI should take at least 2 rounds, took %d", cpi.Rounds)
	}
}

func TestRuleViolationsCounted(t *testing.T) {
	// A soft constraint that stays violated in the optimum: strong facts
	// on both sides of a weak disjointness constraint.
	st := store.New()
	st.Add(rdf.NewQuad("P", "coach", "A", temporal.MustNew(2000, 2004), 0.95))
	st.Add(rdf.NewQuad("P", "coach", "B", temporal.MustNew(2001, 2003), 0.95))
	g := ground.New(st)
	prog := rulelang.MustParse(
		"soft: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = 0.2")
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleViolations["soft"] == 0 {
		t.Errorf("weak constraint should stay violated against strong evidence: %v", res.RuleViolations)
	}
}

func TestEmptyProgram(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	res, err := MAP(g, rulelang.MustParse(""), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All evidence kept (conf > 0.5 everywhere except Palermo at 0.5,
	// which has zero prior and may land either way).
	for i := 0; i < g.Atoms().Len(); i++ {
		info := g.Atoms().Info(ground.AtomID(i))
		if info.Conf > 0.5 && !res.Truth[i] {
			t.Errorf("fact %v dropped with no constraints", info.Key)
		}
	}
}

func BenchmarkMAPFigure1(b *testing.B) {
	st := figure1Store(b)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ground.New(st)
		if _, err := MAP(g, prog, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKeepBiasKeepsBoundaryFacts(t *testing.T) {
	// With the keep bias zeroed out (negative sentinel not supported, so
	// use a tiny value) a confidence-0.5 fact has no prior and may drop;
	// with the default bias it must be kept.
	st := figure1Store(t)
	g := ground.New(st)
	prog := rulelang.MustParse("")
	res, err := MAP(g, prog, Options{KeepBias: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	palermo := findAtom(t, g, "(CR, playsFor, Palermo, [1984,1986])")
	if !res.TrueAtom(palermo) {
		t.Error("keep bias should retain the confidence-0.5 fact")
	}
}

func TestEvidenceClampBoundsCertainFacts(t *testing.T) {
	// A wider clamp weakens certain facts: with clamp 0.3 a conf-1.0 fact
	// has logit ln(0.7/0.3) ≈ 0.85 and can lose against a strong rule.
	if w := Logit(1.0, 0.3); w > 0.9 {
		t.Errorf("clamped logit = %g", w)
	}
	if w := Logit(1.0, 1e-6); w < 10 {
		t.Errorf("tight clamp logit = %g", w)
	}
}

func TestMAPRuntimeRecorded(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	res, err := MAP(g, rulelang.MustParse(""), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Error("runtime not recorded")
	}
}
