package store

import "repro/internal/rdf"

// View is an explicit read-only snapshot of a Store, safe for concurrent
// use by any number of readers. A plain Store is almost read-safe once
// loading completes, but Match lazily builds and caches per-predicate
// interval indexes — a hidden write that would race under concurrent
// grounding workers if it were unsynchronised; the cache is
// mutex-guarded precisely so a View's access paths stay sound (and
// indexes are still built only for the temporal queries that need them).
//
// A View aliases the store rather than copying it: it stays valid only
// while the underlying store is not mutated. Callers that interleave
// writes with concurrent reads (the grounder's forward-chaining rounds)
// must take a fresh view after each write phase.
type View struct {
	st *Store
}

// ReadView returns a read-only view over the store. The receiver remains
// usable; the view is invalidated by any subsequent Add.
func (st *Store) ReadView() View {
	return View{st: st}
}

// Valid reports whether the view is backed by a store (the zero View is
// not).
func (v View) Valid() bool { return v.st != nil }

// Len returns the number of distinct facts.
func (v View) Len() int { return v.st.Len() }

// Fact decodes the quad with the given id.
func (v View) Fact(id FactID) rdf.Quad { return v.st.Fact(id) }

// Confidence returns the confidence of a fact without decoding terms.
func (v View) Confidence(id FactID) float64 { return v.st.Confidence(id) }

// Match invokes fn for each fact matching the pattern, in fact-id order
// for a given index, until fn returns false.
func (v View) Match(pat Pattern, fn func(FactID, rdf.Quad) bool) { v.st.Match(pat, fn) }

// MatchIDs returns the ids of all facts matching the pattern.
func (v View) MatchIDs(pat Pattern) []FactID { return v.st.MatchIDs(pat) }

// Contains reports whether the exact temporal statement is present.
func (v View) Contains(q rdf.Quad) bool { return v.st.Contains(q) }
