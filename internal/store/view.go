package store

import (
	"sync"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// View is an epoch-pinned, read-only snapshot of a Store, safe for
// concurrent use by any number of readers while writers proceed. A view
// created at epoch e sees exactly the facts live at e: later adds,
// removes and revivals are invisible, so a multi-call read sequence
// (the grounder's join phases, a paginating UI) observes one consistent
// state.
//
// A View aliases the store rather than copying it. Reads acquire the
// store's shared lock per call and never hold it across user callbacks,
// so callbacks may re-enter the store freely. The one un-versioned
// dimension is confidence: a confidence raise mutates the fact in place,
// so Confidence/Fact report the value current at read time, not at pin
// time — the pipeline treats confidence as monotone merge metadata, not
// as part of the fact's identity.
type View struct {
	st    *Store
	epoch Epoch
	terms []rdf.Term
	n     int
}

// ReadView returns a read-only view pinned at the store's current epoch.
// The receiver remains usable and mutable; the view keeps seeing the
// pinned state.
func (st *Store) ReadView() View {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return View{st: st, epoch: st.epoch, terms: st.dict.terms(), n: len(st.facts) - st.dead}
}

// Valid reports whether the view is backed by a store (the zero View is
// not).
func (v View) Valid() bool { return v.st != nil }

// Epoch returns the store epoch the view is pinned at.
func (v View) Epoch() Epoch { return v.epoch }

// Len returns the number of facts live at the pinned epoch.
func (v View) Len() int { return v.n }

// Fact decodes the quad with the given id. The id must have been
// assigned no later than the pinned epoch.
func (v View) Fact(id FactID) rdf.Quad {
	v.st.mu.RLock()
	f := v.st.facts[id]
	v.st.mu.RUnlock()
	return v.decode(f)
}

// decode builds the quad from the view's term snapshot, avoiding the
// store lock for the dictionary half of the work.
func (v View) decode(f fact) rdf.Quad {
	return rdf.Quad{
		Subject:    v.terms[f.s],
		Predicate:  v.terms[f.p],
		Object:     v.terms[f.o],
		Interval:   f.iv,
		Confidence: f.conf,
	}
}

// Confidence returns the confidence of a fact without decoding terms.
func (v View) Confidence(id FactID) float64 { return v.st.Confidence(id) }

type matched struct {
	id FactID
	f  fact
}

// matchBufPool recycles Match's per-call buffers. Grounding issues one
// Match per join step — millions on a large solve — and the pooled
// buffer (capacity retained across calls, no pointers inside) makes the
// steady state allocation-free. Nested Matches from inside fn each draw
// their own buffer, so re-entrancy stays safe.
var matchBufPool = sync.Pool{New: func() any { return new([]matched) }}

// Match invokes fn for each fact live at the pinned epoch matching the
// pattern, in fact-id order for a given index, until fn returns false.
// The matches are buffered under the read lock and the lock released
// before fn runs — fn may freely re-enter the store (the grounder's
// nested joins do) without risking a reader/writer deadlock; the
// per-call buffer is the price of that guarantee.
func (v View) Match(pat Pattern, fn func(FactID, rdf.Quad) bool) {
	bufp := matchBufPool.Get().(*[]matched)
	ms := (*bufp)[:0]
	v.st.mu.RLock()
	v.st.forCandidatesLocked(pat, v.epoch, func(id FactID, f fact) bool {
		ms = append(ms, matched{id: id, f: f})
		return true
	})
	v.st.mu.RUnlock()
	for _, m := range ms {
		if !fn(m.id, v.decode(m.f)) {
			break
		}
	}
	*bufp = ms[:0]
	matchBufPool.Put(bufp)
}

// MatchIDs returns the ids of all facts live at the pinned epoch that
// match the pattern.
func (v View) MatchIDs(pat Pattern) []FactID {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return v.st.matchIDsLocked(pat, v.epoch)
}

// Contains reports whether the exact temporal statement was live at the
// pinned epoch.
func (v View) Contains(q rdf.Quad) bool {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return v.st.containsAtLocked(q, v.epoch)
}

// FactCodes is the dictionary-encoded form of a stored fact as handed to
// MatchCodes: term codes plus interval and confidence, no term decoding.
type FactCodes struct {
	S, P, O  TermID
	Interval temporal.Interval
	Conf     float64
}

// FactCodes returns the encoded form of the fact with the given id. The
// id must have been assigned no later than the pinned epoch.
func (v View) FactCodes(id FactID) FactCodes {
	v.st.mu.RLock()
	f := v.st.facts[id]
	v.st.mu.RUnlock()
	return FactCodes{S: f.s, P: f.p, O: f.o, Interval: f.iv, Conf: f.conf}
}

// MatchCodes invokes fn for each fact live at the pinned epoch matching
// the code pattern, in fact-id order for a given index, until fn returns
// false. It is Match without the dictionary round-trips: the pattern
// arrives pre-resolved and the matches are emitted as raw codes — the
// compiled grounder's join path, which never needs the terms themselves.
// Like Match, candidates are buffered under the read lock and fn runs
// lock-free, so fn may re-enter the store.
func (v View) MatchCodes(cp CodePattern, fn func(FactID, FactCodes) bool) {
	bufp := matchBufPool.Get().(*[]matched)
	ms := (*bufp)[:0]
	v.st.mu.RLock()
	v.st.forCandidatesCodesLocked(cp, v.epoch, func(id FactID, f fact) bool {
		ms = append(ms, matched{id: id, f: f})
		return true
	})
	v.st.mu.RUnlock()
	for _, m := range ms {
		if !fn(m.id, FactCodes{S: m.f.s, P: m.f.p, O: m.f.o, Interval: m.f.iv, Conf: m.f.conf}) {
			break
		}
	}
	*bufp = ms[:0]
	matchBufPool.Put(bufp)
}

// MatchCodeIDs returns the ids of all facts live at the pinned epoch
// matching the code pattern.
func (v View) MatchCodeIDs(cp CodePattern) []FactID {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	var out []FactID
	v.st.forCandidatesCodesLocked(cp, v.epoch, func(id FactID, f fact) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Terms returns the code-indexed term snapshot the view was pinned with
// (index 0 unused). Entries are immutable and cover every code assigned
// up to the pinned epoch; safe to read without the store lock.
func (v View) Terms() []rdf.Term { return v.terms }

// LookupTerm returns the store's current dictionary code for a term; ok
// is false when the term has never been interned. Unlike Terms this
// consults the live dictionary under the store lock, so it also sees
// codes assigned after the view was pinned.
func (v View) LookupTerm(t rdf.Term) (TermID, bool) {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return v.st.dict.Lookup(t)
}

// PostingLenS returns the length of the subject posting list for a term
// code in O(1): an upper bound on matching facts (tombstoned entries
// stay in their lists). The selectivity planner's per-constant estimate.
func (v View) PostingLenS(t TermID) int {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return len(posting(v.st.byS, t))
}

// PostingLenP is PostingLenS for the predicate position.
func (v View) PostingLenP(t TermID) int {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return len(posting(v.st.byP, t))
}

// PostingLenO is PostingLenS for the object position.
func (v View) PostingLenO(t TermID) int {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return len(posting(v.st.byO, t))
}

// IndexCardinalities are O(1) whole-store statistics for selectivity
// estimation: total stored facts (including tombstones, matching what
// posting lengths count) and the number of distinct term codes occupying
// each position index. Facts/Distinct* is the average posting length —
// the planner's estimate for a position bound by a join variable.
type IndexCardinalities struct {
	Facts     int
	DistinctS int
	DistinctP int
	DistinctO int
}

// Cardinalities returns the store's index cardinalities in O(1).
func (v View) Cardinalities() IndexCardinalities {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	return IndexCardinalities{
		Facts:     len(v.st.facts),
		DistinctS: v.st.nzS,
		DistinctP: v.st.nzP,
		DistinctO: v.st.nzO,
	}
}

// EstimateCodes returns an O(1) upper-bound estimate of the facts
// matching the code pattern: the shortest posting list over the bound
// positions, or the total fact count for the all-wildcard pattern. The
// temporal filter is ignored.
func (v View) EstimateCodes(cp CodePattern) int {
	v.st.mu.RLock()
	defer v.st.mu.RUnlock()
	n := -1
	min := func(k int) {
		if n < 0 || k < n {
			n = k
		}
	}
	if cp.S != NoTerm {
		min(len(posting(v.st.byS, cp.S)))
	}
	if cp.P != NoTerm {
		min(len(posting(v.st.byP, cp.P)))
	}
	if cp.O != NoTerm {
		min(len(posting(v.st.byO, cp.O)))
	}
	if n < 0 {
		return len(v.st.facts)
	}
	return n
}
