package store

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// Allocation regression gates for the two hot read paths the scale work
// rebuilt. These are run by CI next to the scale-bench smoke: a change
// that reintroduces per-call maps or buffers fails here long before it
// shows up on a memory profile.

// TestMatchAllocsSteadyState pins View.Match to zero steady-state
// allocations: the match buffer comes from a pool and the quads are
// decoded into the callback by value.
func TestMatchAllocsSteadyState(t *testing.T) {
	st := newFigure1Store(t)
	v := st.ReadView()
	pat := Pattern{S: rdf.NewIRI("CR"), P: rdf.NewIRI("coach")}
	n := 0
	visit := func(FactID, rdf.Quad) bool { n++; return true }
	v.Match(pat, visit) // warm the buffer pool
	avg := testing.AllocsPerRun(200, func() {
		v.Match(pat, visit)
	})
	if n == 0 {
		t.Fatal("pattern matched no facts; gate is vacuous")
	}
	if avg > 0.1 {
		t.Errorf("View.Match allocates %.2f objects/run in steady state, want 0", avg)
	}
}

// TestDeltaSinceAllocsSingleUpdate pins the single-fact update read-out
// — the DeltaSince call the incremental engine makes after one add — to
// a constant few allocations (the touched-id slice and the delta
// bucket), not a per-call dedup map.
func TestDeltaSinceAllocsSingleUpdate(t *testing.T) {
	st := newFigure1Store(t)
	before := st.Epoch()
	if _, err := st.Add(rdf.NewQuad("CR", "coach", "Parma", temporal.MustNew(2007, 2009), 0.4)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		d := st.DeltaSince(before)
		if len(d.Added) != 1 {
			t.Fatalf("DeltaSince: %d added, want 1", len(d.Added))
		}
	})
	if avg > 4 {
		t.Errorf("single-fact DeltaSince allocates %.2f objects/run, want <= 4", avg)
	}
}
