package store

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

func TestAsOfAndSnapshot(t *testing.T) {
	st := newFigure1Store(t)
	// In 2002 CR coaches Chelsea and Napoli and the birthDate fact holds.
	ids := st.AsOf(2002, Pattern{})
	if len(ids) != 3 {
		t.Fatalf("AsOf(2002) = %d facts, want 3", len(ids))
	}
	snap := st.SnapshotAt(2016)
	if len(snap) != 2 { // Leicester + birthDate
		t.Fatalf("SnapshotAt(2016) = %d facts: %v", len(snap), snap)
	}
	// Restricted AsOf.
	coach := st.AsOf(2002, Pattern{P: rdf.NewIRI("coach")})
	if len(coach) != 2 {
		t.Errorf("AsOf coach 2002 = %d", len(coach))
	}
	if got := st.AsOf(1900, Pattern{}); len(got) != 0 {
		t.Errorf("AsOf(1900) = %d", len(got))
	}
}

func TestHistoryCoalesces(t *testing.T) {
	st := New()
	// Two extraction runs produced abutting and overlapping spells.
	st.Add(rdf.NewQuad("p", "worksFor", "acme", temporal.MustNew(2000, 2003), 0.8))
	st.Add(rdf.NewQuad("p", "worksFor", "acme", temporal.MustNew(2004, 2006), 0.7))
	st.Add(rdf.NewQuad("p", "worksFor", "acme", temporal.MustNew(2005, 2008), 0.6))
	st.Add(rdf.NewQuad("p", "worksFor", "globex", temporal.MustNew(2012, 2014), 0.9))
	h := st.History(rdf.NewIRI("p"), rdf.NewIRI("worksFor"), rdf.NewIRI("acme"))
	if len(h.Intervals()) != 1 || h.Intervals()[0] != temporal.MustNew(2000, 2008) {
		t.Errorf("acme history = %v", h)
	}
	// Wildcard object: both employers.
	all := st.History(rdf.NewIRI("p"), rdf.NewIRI("worksFor"), rdf.Term{})
	if len(all.Intervals()) != 2 {
		t.Errorf("combined history = %v", all)
	}
	if all.Duration() != 9+3 {
		t.Errorf("combined duration = %d", all.Duration())
	}
}

func TestTimelineOrdered(t *testing.T) {
	st := newFigure1Store(t)
	tl := st.Timeline(rdf.NewIRI("CR"))
	if len(tl) != 5 {
		t.Fatalf("timeline = %d entries", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i-1].Quad.Interval.Compare(tl[i].Quad.Interval) > 0 {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	if tl[0].Quad.Predicate.Value != "birthDate" {
		t.Errorf("first entry = %v", tl[0].Quad)
	}
	if got := st.Timeline(rdf.NewIRI("nobody")); len(got) != 0 {
		t.Errorf("unknown subject timeline = %d", len(got))
	}
}

func TestSpan(t *testing.T) {
	st := newFigure1Store(t)
	span, ok := st.Span()
	if !ok || span != temporal.MustNew(1951, 2017) {
		t.Errorf("Span = %v, %v", span, ok)
	}
	if _, ok := New().Span(); ok {
		t.Error("empty store should have no span")
	}
}
