package store

import "repro/internal/rdf"

// JournalRecord is one change-log entry together with the payload a
// durable log needs to replay it. For OpAdd the Quad carries the full
// statement as handed to Add — covering a fresh insert, a revival and a
// confidence raise alike, since replaying Add with that quad reproduces
// each case exactly. For OpRemove the Quad is zero; the FactID alone
// identifies the tombstoned fact.
type JournalRecord struct {
	Change Change
	Quad   rdf.Quad
}

// Journal is an optional durable sink for the store's change log. Append
// is invoked synchronously under the store's exclusive write lock, once
// per epoch advance and in epoch order, so a journal sees exactly the
// sequence the in-memory log records. Implementations must be fast —
// buffer the record and return; durability (flush, fsync) belongs to
// explicit sync points outside the lock. Append must not call back into
// the store.
type Journal interface {
	Append(JournalRecord)
}

// SetJournal installs (or, with nil, detaches) the journal sink. Changes
// made while no journal is attached are not replayable from the journal;
// callers attaching a journal to a non-empty store must first capture a
// snapshot at the current epoch (see Checkpoint) so the journal only
// needs to cover the suffix.
func (st *Store) SetJournal(j Journal) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.journal = j
}

// SetCompactFloor registers a hook consulted by CompactLog: when set,
// log truncation is clamped to at most the returned epoch. A durable
// journal registers its last-synced epoch here so the in-memory change
// log — the only replay source for re-journaling after a journal error —
// is never truncated past what has actually reached stable storage.
// Pass nil to remove the clamp.
func (st *Store) SetCompactFloor(fn func() Epoch) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.compactFloor = fn
}

// journalLocked forwards a just-logged change to the attached journal.
// Callers hold the write lock and pass the same quad Add received (zero
// for removes).
func (st *Store) journalLocked(ch Change, q rdf.Quad) {
	if st.journal != nil {
		st.journal.Append(JournalRecord{Change: ch, Quad: q})
	}
}
