// Package store implements the storage substrate of TeCoRe: an in-memory,
// dictionary-encoded temporal quad store with hash indexes on term
// positions, a block-skip interval index for temporal range scans,
// pattern-matching iterators used by the grounding engine, dataset
// statistics, and a binary snapshot format for persistence.
//
// In the original system this role is played by a relational backend
// (MySQL or H2) that the solvers query for evidence; the store offers the
// same access paths — lookups by any combination of bound subject,
// predicate and object plus a temporal filter — with index-backed
// complexity.
package store

import (
	"fmt"

	"repro/internal/rdf"
)

// TermID is the dictionary code of an RDF term. IDs are dense and start
// at 1; 0 is reserved as "no term" (pattern wildcard).
type TermID uint32

// NoTerm is the TermID wildcard.
const NoTerm TermID = 0

// Dict is a bidirectional dictionary between RDF terms and dense integer
// codes. Encoding terms once lets the store, the grounder and the solvers
// work on word-sized values.
//
// The forward direction maps a 64-bit term hash to the code and verifies
// candidates against the code-indexed term slice, instead of keying a map
// by the 56-byte Term struct — at millions of terms the duplicated
// structs and their map buckets were the dictionary's dominant cost.
// Colliding terms (different term, same hash) spill into a short
// linear-scanned list; a hash hit is never trusted without an equality
// check, so collisions cost time, never correctness.
type Dict struct {
	byHash map[uint64]TermID
	spill  []TermID
	toT    []rdf.Term // index 0 unused
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		byHash: make(map[uint64]TermID),
		toT:    make([]rdf.Term, 1),
	}
}

// termHash is FNV-1a over the term's fields with an avalanche finish,
// deterministic across processes. Field boundaries are marked so
// ("ab","c") and ("a","bc") in adjacent fields hash differently.
func termHash(t rdf.Term) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	h ^= uint64(t.Kind)
	h *= prime
	mix(t.Value)
	mix(t.Datatype)
	mix(t.Lang)
	return mix64(h)
}

// Encode interns the term and returns its code, assigning a fresh one on
// first sight.
func (d *Dict) Encode(t rdf.Term) TermID {
	h := termHash(t)
	id, ok := d.byHash[h]
	if ok {
		if d.toT[id] == t {
			return id
		}
		for _, id := range d.spill {
			if d.toT[id] == t {
				return id
			}
		}
	}
	fresh := TermID(len(d.toT))
	d.toT = append(d.toT, t)
	if ok {
		d.spill = append(d.spill, fresh)
	} else {
		d.byHash[h] = fresh
	}
	return fresh
}

// Lookup returns the code of the term without interning it; ok is false
// when the term has never been seen.
func (d *Dict) Lookup(t rdf.Term) (TermID, bool) {
	if id, ok := d.byHash[termHash(t)]; ok {
		if d.toT[id] == t {
			return id, true
		}
		for _, id := range d.spill {
			if d.toT[id] == t {
				return id, true
			}
		}
	}
	return 0, false
}

// Decode returns the term for a code. It panics on an unknown code, which
// always indicates a bug in the caller.
func (d *Dict) Decode(id TermID) rdf.Term {
	if id == NoTerm || int(id) >= len(d.toT) {
		panic(fmt.Sprintf("store: decode of unknown term id %d", id))
	}
	return d.toT[id]
}

// Len returns the number of distinct terms interned.
func (d *Dict) Len() int { return len(d.toT) - 1 }

// terms returns the code-indexed term slice for snapshotting. The
// header copy is safe to read without the store lock: entries are
// immutable once published and growth relocates rather than mutates.
func (d *Dict) terms() []rdf.Term { return d.toT }
