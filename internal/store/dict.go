// Package store implements the storage substrate of TeCoRe: an in-memory,
// dictionary-encoded temporal quad store with hash indexes on term
// positions, a block-skip interval index for temporal range scans,
// pattern-matching iterators used by the grounding engine, dataset
// statistics, and a binary snapshot format for persistence.
//
// In the original system this role is played by a relational backend
// (MySQL or H2) that the solvers query for evidence; the store offers the
// same access paths — lookups by any combination of bound subject,
// predicate and object plus a temporal filter — with index-backed
// complexity.
package store

import (
	"fmt"

	"repro/internal/rdf"
)

// TermID is the dictionary code of an RDF term. IDs are dense and start
// at 1; 0 is reserved as "no term" (pattern wildcard).
type TermID uint32

// NoTerm is the TermID wildcard.
const NoTerm TermID = 0

// Dict is a bidirectional dictionary between RDF terms and dense integer
// codes. Encoding terms once lets the store, the grounder and the solvers
// work on word-sized values.
type Dict struct {
	toID map[rdf.Term]TermID
	toT  []rdf.Term // index 0 unused
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		toID: make(map[rdf.Term]TermID),
		toT:  make([]rdf.Term, 1),
	}
}

// Encode interns the term and returns its code, assigning a fresh one on
// first sight.
func (d *Dict) Encode(t rdf.Term) TermID {
	if id, ok := d.toID[t]; ok {
		return id
	}
	id := TermID(len(d.toT))
	d.toID[t] = id
	d.toT = append(d.toT, t)
	return id
}

// Lookup returns the code of the term without interning it; ok is false
// when the term has never been seen.
func (d *Dict) Lookup(t rdf.Term) (TermID, bool) {
	id, ok := d.toID[t]
	return id, ok
}

// Decode returns the term for a code. It panics on an unknown code, which
// always indicates a bug in the caller.
func (d *Dict) Decode(id TermID) rdf.Term {
	if id == NoTerm || int(id) >= len(d.toT) {
		panic(fmt.Sprintf("store: decode of unknown term id %d", id))
	}
	return d.toT[id]
}

// Len returns the number of distinct terms interned.
func (d *Dict) Len() int { return len(d.toT) - 1 }

// terms returns the code-indexed term slice for snapshotting. The
// header copy is safe to read without the store lock: entries are
// immutable once published and growth relocates rather than mutates.
func (d *Dict) terms() []rdf.Term { return d.toT }
