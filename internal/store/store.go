// Package store implements the storage substrate of TeCoRe: an in-memory,
// dictionary-encoded temporal quad store with hash indexes on term
// positions, a block-skip interval index for temporal range scans,
// pattern-matching iterators used by the grounding engine, dataset
// statistics, and a binary snapshot format for persistence.
//
// In the original system this role is played by a relational backend
// (MySQL or H2) that the solvers query for evidence; the store offers the
// same access paths — lookups by any combination of bound subject,
// predicate and object plus a temporal filter — with index-backed
// complexity.
//
// # Versioning model
//
// The store is epoch-versioned: every successful mutation (Add, Remove,
// a confidence raise, a revival) advances a monotonic Epoch and appends
// to a change log. Facts are never physically deleted — Remove tombstones
// the fact, keeping its FactID stable — so DeltaSince(epoch) can report
// the net adds, removes and updates between any past epoch and now; the
// incremental solve pipeline consumes exactly that delta. Views pin the
// epoch at creation and read a consistent snapshot while writers proceed:
// all access paths are guarded by a reader/writer lock, and no lock is
// held across user callbacks, so concurrent Match during Add/Remove is
// safe (and race-detector clean).
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// FactID identifies a fact within a Store. IDs are dense, start at 0 and
// are stable for the lifetime of the store: facts are never physically
// deleted, Remove tombstones them in place and a later re-Add revives
// the same id.
type FactID int32

// Epoch is a monotonically increasing store version. Epoch 0 is the
// empty store; every successful mutation advances it by one.
type Epoch uint64

// Op discriminates change-log entries.
type Op uint8

const (
	// OpAdd records a fact becoming (or staying) live: a fresh insert, a
	// revival of a tombstoned fact, or a confidence raise.
	OpAdd Op = iota
	// OpRemove records a fact being tombstoned.
	OpRemove
)

// Change is one change-log entry.
type Change struct {
	Epoch Epoch
	Op    Op
	ID    FactID
}

// Delta is the net difference between a past epoch and the current
// state, as reported by DeltaSince. Each id appears in at most one list;
// ids are sorted ascending.
type Delta struct {
	// Added holds facts live now that were not live at the base epoch.
	Added []FactID
	// Removed holds facts live at the base epoch that are tombstoned now.
	Removed []FactID
	// Updated holds facts live at both points whose confidence changed
	// in between (including remove-then-revive sequences). Queries below
	// the compaction floor conservatively include every fact live at
	// both points.
	Updated []FactID
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Updated) == 0
}

// fact is the dictionary-encoded representation of a quad plus its
// lifespan. addedAt/removedAt bound the current live span; removedAt 0
// means live. Prior spans of revived facts live in Store.history.
type fact struct {
	s, p, o   TermID
	iv        temporal.Interval
	conf      float64
	addedAt   Epoch
	removedAt Epoch
}

type lifespan struct{ addedAt, removedAt Epoch }

// Store is an indexed, dictionary-encoded collection of uncertain
// temporal facts. All methods are safe for concurrent use: readers take
// a shared lock, mutators an exclusive one, and no lock is held across
// user callbacks.
type Store struct {
	mu    sync.RWMutex
	dict  *Dict
	facts []fact
	dead  int // tombstoned fact count
	epoch Epoch
	log   []Change
	// compacted is the epoch the change log was truncated up to; delta
	// queries below it use the full-scan path.
	compacted Epoch
	// history holds the prior live spans of revived facts (empty until
	// the first revival), so liveAt stays answerable for any epoch. It is
	// sorted by fact id, one fact's spans adjacent and oldest-first;
	// revival is rare enough that the O(n) ordered insert never shows.
	history []factSpan

	// Posting indexes from bound positions to fact ids: dense slices
	// indexed by TermID (the dictionary hands out dense monotonic codes,
	// so a slice replaces the hash map without waste). Entries are
	// append-only and include tombstoned facts; liveness is checked at
	// visit time. Every list is in ascending fact-id order. Patterns
	// binding two or three positions scan the shortest applicable list
	// with a residual filter on the remaining positions — at two 4-byte
	// ids per fact these three indexes cost a fraction of the five maps
	// (including (s,p)/(p,o) pair maps) they replaced.
	byS [][]FactID
	byP [][]FactID
	byO [][]FactID

	// nzS/nzP/nzO count the distinct term codes with a non-empty posting
	// list per position — free cardinality statistics for the grounder's
	// selectivity planner. Tombstoned facts keep their postings, so these
	// are upper bounds; the planner only compares estimates, never trusts
	// them absolutely.
	nzS, nzP, nzO int

	// byFact detects duplicate temporal statements (same s,p,o,interval)
	// by 64-bit key hash; the rare colliding ids (different key, same
	// hash) spill into byFactSpill and are found by linear scan. Hash
	// hits are always verified against the fact table, so collisions
	// cost time, never correctness.
	byFact      map[uint64]FactID
	byFactSpill []FactID

	// tidx caches per-predicate interval indexes; invalidated when a new
	// fact of the predicate is added. tidxMu guards the lazy build; lock
	// order is always mu before tidxMu.
	tidxMu sync.Mutex
	tidx   map[TermID]*intervalIndex

	// journal, when set, receives every change-log append under the write
	// lock; compactFloor, when set, clamps CompactLog so truncation never
	// outruns the journal's durable tail. See journal.go.
	journal      Journal
	compactFloor func() Epoch
}

type factKey struct {
	s, p, o TermID
	iv      temporal.Interval
}

// factSpan is one prior live span of a revived fact.
type factSpan struct {
	id FactID
	ls lifespan
}

// mix64 is SplitMix64's finalizer, the avalanche stage hashing fact
// keys. Deterministic across processes, unlike runtime map hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (k factKey) hash() uint64 {
	h := mix64(uint64(k.s)<<32 | uint64(k.p))
	h = mix64(h ^ uint64(k.o))
	h = mix64(h ^ uint64(k.iv.Start))
	return mix64(h ^ uint64(k.iv.End))
}

// keyOfLocked rebuilds the dedup key of an existing fact.
func (st *Store) keyOfLocked(id FactID) factKey {
	f := &st.facts[id]
	return factKey{s: f.s, p: f.p, o: f.o, iv: f.iv}
}

// lookupFactLocked finds the fact with exactly this key, checking the
// hash slot first and the collision spill after.
func (st *Store) lookupFactLocked(k factKey) (FactID, bool) {
	if id, ok := st.byFact[k.hash()]; ok {
		if st.keyOfLocked(id) == k {
			return id, true
		}
		for _, id := range st.byFactSpill {
			if st.keyOfLocked(id) == k {
				return id, true
			}
		}
	}
	return 0, false
}

// insertFactLocked records a new fact's key in the dedup index.
func (st *Store) insertFactLocked(k factKey, id FactID) {
	h := k.hash()
	if _, ok := st.byFact[h]; ok {
		st.byFactSpill = append(st.byFactSpill, id)
		return
	}
	st.byFact[h] = id
}

// posting returns the list for term t in a dense index; nil when t is
// beyond the index (interned but never seen in that position).
func posting(idx [][]FactID, t TermID) []FactID {
	if int(t) < len(idx) {
		return idx[t]
	}
	return nil
}

// addPosting appends id to t's posting list, growing the dense index to
// cover t.
func addPosting(idx *[][]FactID, t TermID, id FactID) {
	if n := int(t) + 1; n > len(*idx) {
		if n <= cap(*idx) {
			*idx = (*idx)[:n]
		} else {
			grown := make([][]FactID, n, n+n/2+8)
			copy(grown, *idx)
			*idx = grown
		}
	}
	(*idx)[t] = append((*idx)[t], id)
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:   NewDict(),
		byFact: make(map[uint64]FactID),
		tidx:   make(map[TermID]*intervalIndex),
	}
}

// Add inserts a quad and returns its fact id. Re-adding an existing live
// temporal statement (same subject, predicate, object and interval)
// keeps the higher confidence and returns the original id — the standard
// deduplication rule when merging extraction runs. Re-adding a
// tombstoned statement revives it under its original id with the new
// confidence. Every effective mutation advances the epoch.
func (st *Store) Add(q rdf.Quad) (FactID, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	f := fact{
		s:    st.dict.Encode(q.Subject),
		p:    st.dict.Encode(q.Predicate),
		o:    st.dict.Encode(q.Object),
		iv:   q.Interval,
		conf: q.Confidence,
	}
	key := factKey{s: f.s, p: f.p, o: f.o, iv: f.iv}
	if id, ok := st.lookupFactLocked(key); ok {
		old := &st.facts[id]
		if old.removedAt != 0 {
			// Revive: the tombstoned assertion returns with the new
			// confidence; the prior live span moves to the history,
			// inserted after any earlier spans of the same fact.
			i := sort.Search(len(st.history), func(i int) bool { return st.history[i].id > id })
			st.history = append(st.history, factSpan{})
			copy(st.history[i+1:], st.history[i:])
			st.history[i] = factSpan{id: id, ls: lifespan{old.addedAt, old.removedAt}}
			st.epoch++
			old.addedAt, old.removedAt = st.epoch, 0
			old.conf = q.Confidence
			st.dead--
			ch := Change{Epoch: st.epoch, Op: OpAdd, ID: id}
			st.log = append(st.log, ch)
			st.journalLocked(ch, q)
			return id, nil
		}
		if q.Confidence > old.conf {
			old.conf = q.Confidence
			st.epoch++
			ch := Change{Epoch: st.epoch, Op: OpAdd, ID: id}
			st.log = append(st.log, ch)
			st.journalLocked(ch, q)
		}
		return id, nil
	}
	st.epoch++
	f.addedAt = st.epoch
	id := FactID(len(st.facts))
	st.facts = append(st.facts, f)
	st.insertFactLocked(key, id)
	if len(posting(st.byS, f.s)) == 0 {
		st.nzS++
	}
	if len(posting(st.byP, f.p)) == 0 {
		st.nzP++
	}
	if len(posting(st.byO, f.o)) == 0 {
		st.nzO++
	}
	addPosting(&st.byS, f.s, id)
	addPosting(&st.byP, f.p, id)
	addPosting(&st.byO, f.o, id)
	ch := Change{Epoch: st.epoch, Op: OpAdd, ID: id}
	st.log = append(st.log, ch)
	st.journalLocked(ch, q)
	// Invalidate the temporal index for this predicate.
	st.tidxMu.Lock()
	delete(st.tidx, f.p)
	st.tidxMu.Unlock()
	return id, nil
}

// Remove tombstones the exact temporal statement (matched on subject,
// predicate, object and interval; the confidence is ignored). It returns
// the fact's id and whether a live fact was removed. The id stays valid:
// indexes keep the entry and a later Add revives it.
func (st *Store) Remove(q rdf.Quad) (FactID, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok1 := st.dict.Lookup(q.Subject)
	p, ok2 := st.dict.Lookup(q.Predicate)
	o, ok3 := st.dict.Lookup(q.Object)
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	id, ok := st.lookupFactLocked(factKey{s: s, p: p, o: o, iv: q.Interval})
	if !ok || st.facts[id].removedAt != 0 {
		return 0, false
	}
	st.tombstoneLocked(id)
	return id, true
}

// RemoveID tombstones the fact with the given id, reporting whether it
// was live.
func (st *Store) RemoveID(id FactID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if int(id) >= len(st.facts) || st.facts[id].removedAt != 0 {
		return false
	}
	st.tombstoneLocked(id)
	return true
}

func (st *Store) tombstoneLocked(id FactID) {
	st.epoch++
	st.facts[id].removedAt = st.epoch
	st.dead++
	ch := Change{Epoch: st.epoch, Op: OpRemove, ID: id}
	st.log = append(st.log, ch)
	st.journalLocked(ch, rdf.Quad{})
}

// AddGraph inserts every quad of the graph, reporting the first error.
func (st *Store) AddGraph(g rdf.Graph) error {
	for i, q := range g {
		if _, err := st.Add(q); err != nil {
			return fmt.Errorf("store: quad %d: %w", i, err)
		}
	}
	return nil
}

// Epoch returns the current store version.
func (st *Store) Epoch() Epoch {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.epoch
}

// CompactedEpoch returns the change-log compaction floor: the epoch
// CompactLog last truncated up to (after any registered clamp).
func (st *Store) CompactedEpoch() Epoch {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.compacted
}

// DeltaSince reports the net change between epoch e and the current
// state. A fact removed and re-added since e shows up as Updated; a fact
// added and removed again shows up nowhere.
//
// For epochs at or after the compaction floor (see CompactLog) the
// answer comes from the change log in O(changes); for older epochs it
// falls back to a full scan over the fact table, which stays correct —
// lifespans are never compacted — but conservatively reports every fact
// live at both points as Updated.
func (st *Store) DeltaSince(e Epoch) Delta {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var d Delta
	if e >= st.epoch {
		return d
	}
	if e < st.compacted {
		// Full scan: every fact live at both points is conservatively
		// reported as Updated (the log that would distinguish real
		// confidence changes is gone).
		for id := range st.facts {
			classifyDelta(&d, st, FactID(id), e)
		}
		return d // fact-id order is already sorted
	}
	// Log epochs are strictly increasing; binary search the first entry
	// after e.
	i := sort.Search(len(st.log), func(i int) bool { return st.log[i].Epoch > e })
	if i == len(st.log) {
		return d
	}
	// Dedup by sorting the touched ids instead of a per-call hash set;
	// classification then emits every bucket already in ascending id
	// order, so the single-fact update path costs one small allocation.
	ids := make([]FactID, 0, len(st.log)-i)
	for _, ch := range st.log[i:] {
		ids = append(ids, ch.ID)
	}
	sortIDs(ids)
	prev := FactID(-1)
	for _, id := range ids {
		if id == prev {
			continue
		}
		prev = id
		classifyDelta(&d, st, id, e)
	}
	return d
}

// classifyDelta appends fact id to the delta bucket its liveness
// transition between epoch e and now selects.
func classifyDelta(d *Delta, st *Store, id FactID, e Epoch) {
	was := st.liveAtLocked(id, e)
	is := st.facts[id].removedAt == 0
	switch {
	case !was && is:
		d.Added = append(d.Added, id)
	case was && !is:
		d.Removed = append(d.Removed, id)
	case was && is:
		d.Updated = append(d.Updated, id)
	}
}

// CompactLog drops change-log entries — and revive-history lifespans —
// at or below epoch upTo, bounding the store's bookkeeping on
// long-lived streaming sessions (a fact toggled N times otherwise keeps
// N lifespans forever). DeltaSince queries from upTo onward remain
// exact: the log still covers them, and pruned lifespans all ended
// before upTo so they can never satisfy a liveAt check there. Queries
// below upTo fall back to the full scan and become approximate — facts
// whose only presence at the queried epoch was a pruned lifespan are
// misclassified — so compact only past epochs no consumer will revisit.
//
// When a compaction floor is registered (SetCompactFloor), upTo is
// additionally clamped to it, so a durable journal's un-synced tail is
// always still covered by the in-memory log.
func (st *Store) CompactLog(upTo Epoch) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.compactFloor != nil {
		if fl := st.compactFloor(); upTo > fl {
			upTo = fl
		}
	}
	if upTo <= st.compacted {
		return
	}
	i := sort.Search(len(st.log), func(i int) bool { return st.log[i].Epoch > upTo })
	if i > 0 {
		st.log = append(st.log[:0:0], st.log[i:]...)
	}
	kept := st.history[:0]
	for _, sp := range st.history {
		if sp.ls.removedAt > upTo {
			kept = append(kept, sp)
		}
	}
	st.history = kept
	st.compacted = upTo
}

func sortIDs(ids []FactID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// liveAtLocked reports whether fact id was live at epoch e.
func (st *Store) liveAtLocked(id FactID, e Epoch) bool {
	f := &st.facts[id]
	if f.addedAt <= e {
		return f.removedAt == 0 || f.removedAt > e
	}
	for i := sort.Search(len(st.history), func(i int) bool {
		return st.history[i].id >= id
	}); i < len(st.history) && st.history[i].id == id; i++ {
		if ls := st.history[i].ls; ls.addedAt <= e && ls.removedAt > e {
			return true
		}
	}
	return false
}

// Len returns the number of live facts.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.facts) - st.dead
}

// IDBound returns the exclusive upper bound of assigned fact ids,
// including tombstoned facts. Iterate [0, IDBound) with Live to visit
// the dense id space.
func (st *Store) IDBound() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.facts)
}

// Live reports whether the fact id is currently live (not tombstoned).
func (st *Store) Live(id FactID) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return int(id) < len(st.facts) && st.facts[id].removedAt == 0
}

// Dict exposes the term dictionary (read-only use by the grounder).
func (st *Store) Dict() *Dict { return st.dict }

// Fact decodes the quad with the given id (live or tombstoned).
func (st *Store) Fact(id FactID) rdf.Quad {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.decodeLocked(st.facts[id])
}

func (st *Store) decodeLocked(f fact) rdf.Quad {
	return rdf.Quad{
		Subject:    st.dict.Decode(f.s),
		Predicate:  st.dict.Decode(f.p),
		Object:     st.dict.Decode(f.o),
		Interval:   f.iv,
		Confidence: f.conf,
	}
}

// Confidence returns the confidence of a fact without decoding terms.
func (st *Store) Confidence(id FactID) float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.facts[id].conf
}

// Interval returns the validity interval of a fact without decoding.
func (st *Store) Interval(id FactID) temporal.Interval {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.facts[id].iv
}

// EncodedTriple returns the dictionary codes of a fact's terms.
func (st *Store) EncodedTriple(id FactID) (s, p, o TermID) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	f := st.facts[id]
	return f.s, f.p, f.o
}

// Contains reports whether the exact temporal statement is currently
// live.
func (st *Store) Contains(q rdf.Quad) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.containsAtLocked(q, st.epoch)
}

func (st *Store) containsAtLocked(q rdf.Quad, e Epoch) bool {
	s, ok1 := st.dict.Lookup(q.Subject)
	p, ok2 := st.dict.Lookup(q.Predicate)
	o, ok3 := st.dict.Lookup(q.Object)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	id, ok := st.lookupFactLocked(factKey{s: s, p: p, o: o, iv: q.Interval})
	return ok && st.liveAtLocked(id, e)
}

// Graph materialises the live facts as a Graph in fact-id order.
func (st *Store) Graph() rdf.Graph {
	st.mu.RLock()
	defer st.mu.RUnlock()
	g := make(rdf.Graph, 0, len(st.facts)-st.dead)
	for _, f := range st.facts {
		if f.removedAt != 0 {
			continue
		}
		g = append(g, st.decodeLocked(f))
	}
	return g
}

// TimeFilter restricts pattern matches temporally. The zero value matches
// every interval.
type TimeFilter struct {
	// Kind selects the temporal predicate; TimeAny matches everything.
	Kind TimeFilterKind
	// Interval is the query interval for kinds other than TimeAny.
	Interval temporal.Interval
}

// TimeFilterKind enumerates the supported temporal predicates.
type TimeFilterKind uint8

const (
	// TimeAny matches every fact.
	TimeAny TimeFilterKind = iota
	// TimeIntersects matches facts whose interval shares a chronon with
	// the query interval.
	TimeIntersects
	// TimeDuring matches facts whose interval lies within the query
	// interval.
	TimeDuring
	// TimeEquals matches facts whose interval equals the query interval.
	TimeEquals
)

func (tf TimeFilter) admits(iv temporal.Interval) bool {
	switch tf.Kind {
	case TimeAny:
		return true
	case TimeIntersects:
		return iv.Intersects(tf.Interval)
	case TimeDuring:
		return tf.Interval.ContainsInterval(iv)
	case TimeEquals:
		return iv == tf.Interval
	default:
		return false
	}
}

// Pattern is a quad pattern: any combination of bound subject, predicate
// and object (zero Term = wildcard) plus a temporal filter.
type Pattern struct {
	S, P, O rdf.Term
	Time    TimeFilter
}

// CodePattern is Pattern's dictionary-code twin: bound positions carry
// TermIDs (NoTerm = wildcard) plus a temporal filter. The compiled
// grounder builds these from pre-resolved codes, so matching skips the
// per-call dictionary lookups entirely. Bound codes must come from this
// store's dictionary; a term known to be absent has no matches and is
// the caller's job to short-circuit (NoTerm always means wildcard,
// never "unknown term").
type CodePattern struct {
	S, P, O TermID
	Time    TimeFilter
}

// Match invokes fn for each live fact matching the pattern, in fact-id
// order for a given index, until fn returns false. The quad passed to fn
// is decoded on demand. Match pins the current epoch: mutations racing
// with the iteration do not affect which facts are visited.
func (st *Store) Match(pat Pattern, fn func(FactID, rdf.Quad) bool) {
	st.ReadView().Match(pat, fn)
}

// MatchIDs returns the ids of all live facts matching the pattern.
func (st *Store) MatchIDs(pat Pattern) []FactID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.matchIDsLocked(pat, st.epoch)
}

func (st *Store) matchIDsLocked(pat Pattern, e Epoch) []FactID {
	var out []FactID
	st.forCandidatesLocked(pat, e, func(id FactID, f fact) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Count returns the number of live facts matching the pattern. Unlike
// MatchIDs it counts in the candidate scan without materialising an id
// list.
func (st *Store) Count(pat Pattern) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	st.forCandidatesLocked(pat, st.epoch, func(FactID, fact) bool {
		n++
		return true
	})
	return n
}

// residual is the set of bound positions the chosen candidate index
// does not cover; NoTerm fields are already satisfied by the index.
// A plain struct rather than a filter closure keeps the hot Match path
// allocation-free.
type residual struct {
	s, p, o TermID
}

func (r residual) admits(f fact) bool {
	return (r.s == NoTerm || f.s == r.s) &&
		(r.p == NoTerm || f.p == r.p) &&
		(r.o == NoTerm || f.o == r.o)
}

// resolvePatternLocked translates a term-level pattern into code space;
// ok is false when a bound term is not in the dictionary (no matches).
func (st *Store) resolvePatternLocked(pat Pattern) (CodePattern, bool) {
	cp := CodePattern{Time: pat.Time}
	var ok bool
	if !pat.S.IsZero() {
		if cp.S, ok = st.dict.Lookup(pat.S); !ok {
			return cp, false
		}
	}
	if !pat.P.IsZero() {
		if cp.P, ok = st.dict.Lookup(pat.P); !ok {
			return cp, false
		}
	}
	if !pat.O.IsZero() {
		if cp.O, ok = st.dict.Lookup(pat.O); !ok {
			return cp, false
		}
	}
	return cp, true
}

// forCandidatesLocked drives fn over the facts matching pat that were
// live at epoch e, using the most selective index. Callers must hold at
// least a read lock; fn must not call back into the store.
func (st *Store) forCandidatesLocked(pat Pattern, e Epoch, fn func(FactID, fact) bool) {
	cp, ok := st.resolvePatternLocked(pat)
	if !ok {
		return
	}
	st.forCandidatesCodesLocked(cp, e, fn)
}

// forCandidatesCodesLocked is forCandidatesLocked over a pre-resolved
// code pattern — the compiled grounder's entry, with no dictionary work.
func (st *Store) forCandidatesCodesLocked(cp CodePattern, e Epoch, fn func(FactID, fact) bool) {
	ids, res, scanAll := st.candidatesCodes(cp)
	visit := func(id FactID) bool {
		f := st.facts[id]
		if !st.liveAtLocked(id, e) {
			return true
		}
		if !res.admits(f) {
			return true
		}
		if !cp.Time.admits(f.iv) {
			return true
		}
		return fn(id, f)
	}
	if scanAll {
		for i := range st.facts {
			if !visit(FactID(i)) {
				return
			}
		}
		return
	}
	for _, id := range ids {
		if !visit(id) {
			return
		}
	}
}

// candidatesCodes picks the most selective index for the bound positions
// and returns the candidate id list plus the residual positions the
// chosen index does not cover. scanAll signals the unindexed full-store
// scan so callers can iterate without materialising ids.
func (st *Store) candidatesCodes(cp CodePattern) (ids []FactID, res residual, scanAll bool) {
	sID, pID, oID := cp.S, cp.P, cp.O

	// Multi-bound patterns scan the shortest applicable posting list and
	// filter the remaining positions residually. Every posting list is in
	// ascending fact-id order, so which list serves a pattern never
	// changes the visit order — the determinism contracts downstream
	// depend on that.
	switch {
	case sID != NoTerm && pID != NoTerm && oID != NoTerm:
		s, o := posting(st.byS, sID), posting(st.byO, oID)
		if len(s) <= len(o) {
			return s, residual{p: pID, o: oID}, false
		}
		return o, residual{s: sID, p: pID}, false
	case sID != NoTerm && pID != NoTerm:
		return posting(st.byS, sID), residual{p: pID}, false
	case pID != NoTerm && oID != NoTerm:
		// Object lists are near-universally shorter than predicate lists.
		return posting(st.byO, oID), residual{p: pID}, false
	case sID != NoTerm && oID != NoTerm:
		s, o := posting(st.byS, sID), posting(st.byO, oID)
		if len(s) <= len(o) {
			return s, residual{o: oID}, false
		}
		return o, residual{s: sID}, false
	case sID != NoTerm:
		return posting(st.byS, sID), residual{}, false
	case oID != NoTerm:
		return posting(st.byO, oID), residual{}, false
	case pID != NoTerm:
		// Predicate-only scans are the grounder's hot path; use the
		// interval index when the pattern is temporal.
		if cp.Time.Kind == TimeIntersects {
			return st.intervalIndexFor(pID).overlapping(cp.Time.Interval), residual{}, false
		}
		return posting(st.byP, pID), residual{}, false
	default:
		return nil, residual{}, true
	}
}

// PredicateIDs returns the distinct predicate codes with at least one
// live fact.
func (st *Store) PredicateIDs() []TermID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []TermID
	// The dense index walks term ids in ascending order — already sorted.
	for p, ids := range st.byP {
		if len(ids) == 0 {
			continue
		}
		if st.dead == 0 {
			out = append(out, TermID(p))
			continue
		}
		for _, id := range ids {
			if st.facts[id].removedAt == 0 {
				out = append(out, TermID(p))
				break
			}
		}
	}
	return out
}

// PredicateFacts returns the ids of all live facts with the given
// predicate code. The returned slice must not be modified.
func (st *Store) PredicateFacts(p TermID) []FactID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.liveOnlyLocked(posting(st.byP, p))
}

// SubjectFacts returns the ids of all live facts with the given subject
// code. The returned slice must not be modified.
func (st *Store) SubjectFacts(s TermID) []FactID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.liveOnlyLocked(posting(st.byS, s))
}

// liveOnlyLocked filters tombstoned ids out of an index slice, returning
// the slice unchanged when the store has no tombstones.
func (st *Store) liveOnlyLocked(ids []FactID) []FactID {
	if st.dead == 0 {
		return ids
	}
	out := make([]FactID, 0, len(ids))
	for _, id := range ids {
		if st.facts[id].removedAt == 0 {
			out = append(out, id)
		}
	}
	return out
}
