package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// FactID identifies a fact within a Store. IDs are dense, start at 0 and
// are stable for the lifetime of the store (facts are never physically
// deleted; conflict resolution works on copies of the assignment, not by
// mutating evidence).
type FactID int32

// fact is the dictionary-encoded representation of a quad.
type fact struct {
	s, p, o TermID
	iv      temporal.Interval
	conf    float64
}

// Store is an indexed, dictionary-encoded collection of uncertain
// temporal facts. It is not safe for concurrent mutation; concurrent
// readers are safe once loading is complete.
type Store struct {
	dict  *Dict
	facts []fact

	// Hash indexes from bound positions to fact ids. Pair keys pack two
	// TermIDs into a uint64.
	byS  map[TermID][]FactID
	byP  map[TermID][]FactID
	byO  map[TermID][]FactID
	bySP map[uint64][]FactID
	byPO map[uint64][]FactID

	// byFact detects duplicate temporal statements (same s,p,o,interval).
	byFact map[factKey]FactID

	// tidx caches per-predicate interval indexes; invalidated on Add.
	// tidxMu guards it so the lazy build is safe under the concurrent
	// readers a View admits.
	tidxMu sync.Mutex
	tidx   map[TermID]*intervalIndex
}

type factKey struct {
	s, p, o TermID
	iv      temporal.Interval
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:   NewDict(),
		byS:    make(map[TermID][]FactID),
		byP:    make(map[TermID][]FactID),
		byO:    make(map[TermID][]FactID),
		bySP:   make(map[uint64][]FactID),
		byPO:   make(map[uint64][]FactID),
		byFact: make(map[factKey]FactID),
		tidx:   make(map[TermID]*intervalIndex),
	}
}

func pair(a, b TermID) uint64 { return uint64(a)<<32 | uint64(b) }

// Add inserts a quad and returns its fact id. Re-adding an existing
// temporal statement (same subject, predicate, object and interval) keeps
// the higher confidence and returns the original id — the standard
// deduplication rule when merging extraction runs.
func (st *Store) Add(q rdf.Quad) (FactID, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	f := fact{
		s:    st.dict.Encode(q.Subject),
		p:    st.dict.Encode(q.Predicate),
		o:    st.dict.Encode(q.Object),
		iv:   q.Interval,
		conf: q.Confidence,
	}
	key := factKey{s: f.s, p: f.p, o: f.o, iv: f.iv}
	if id, ok := st.byFact[key]; ok {
		if q.Confidence > st.facts[id].conf {
			st.facts[id].conf = q.Confidence
		}
		return id, nil
	}
	id := FactID(len(st.facts))
	st.facts = append(st.facts, f)
	st.byFact[key] = id
	st.byS[f.s] = append(st.byS[f.s], id)
	st.byP[f.p] = append(st.byP[f.p], id)
	st.byO[f.o] = append(st.byO[f.o], id)
	st.bySP[pair(f.s, f.p)] = append(st.bySP[pair(f.s, f.p)], id)
	st.byPO[pair(f.p, f.o)] = append(st.byPO[pair(f.p, f.o)], id)
	// Invalidate the temporal index for this predicate.
	st.tidxMu.Lock()
	delete(st.tidx, f.p)
	st.tidxMu.Unlock()
	return id, nil
}

// AddGraph inserts every quad of the graph, reporting the first error.
func (st *Store) AddGraph(g rdf.Graph) error {
	for i, q := range g {
		if _, err := st.Add(q); err != nil {
			return fmt.Errorf("store: quad %d: %w", i, err)
		}
	}
	return nil
}

// Len returns the number of distinct facts.
func (st *Store) Len() int { return len(st.facts) }

// Dict exposes the term dictionary (read-only use by the grounder).
func (st *Store) Dict() *Dict { return st.dict }

// Fact decodes the quad with the given id.
func (st *Store) Fact(id FactID) rdf.Quad {
	f := st.facts[id]
	return rdf.Quad{
		Subject:    st.dict.Decode(f.s),
		Predicate:  st.dict.Decode(f.p),
		Object:     st.dict.Decode(f.o),
		Interval:   f.iv,
		Confidence: f.conf,
	}
}

// Confidence returns the confidence of a fact without decoding terms.
func (st *Store) Confidence(id FactID) float64 { return st.facts[id].conf }

// Interval returns the validity interval of a fact without decoding.
func (st *Store) Interval(id FactID) temporal.Interval { return st.facts[id].iv }

// EncodedTriple returns the dictionary codes of a fact's terms.
func (st *Store) EncodedTriple(id FactID) (s, p, o TermID) {
	f := st.facts[id]
	return f.s, f.p, f.o
}

// Contains reports whether the exact temporal statement is present.
func (st *Store) Contains(q rdf.Quad) bool {
	s, ok1 := st.dict.Lookup(q.Subject)
	p, ok2 := st.dict.Lookup(q.Predicate)
	o, ok3 := st.dict.Lookup(q.Object)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	_, ok := st.byFact[factKey{s: s, p: p, o: o, iv: q.Interval}]
	return ok
}

// Graph materialises the whole store as a Graph in fact-id order.
func (st *Store) Graph() rdf.Graph {
	g := make(rdf.Graph, st.Len())
	for i := range st.facts {
		g[i] = st.Fact(FactID(i))
	}
	return g
}

// TimeFilter restricts pattern matches temporally. The zero value matches
// every interval.
type TimeFilter struct {
	// Kind selects the temporal predicate; TimeAny matches everything.
	Kind TimeFilterKind
	// Interval is the query interval for kinds other than TimeAny.
	Interval temporal.Interval
}

// TimeFilterKind enumerates the supported temporal predicates.
type TimeFilterKind uint8

const (
	// TimeAny matches every fact.
	TimeAny TimeFilterKind = iota
	// TimeIntersects matches facts whose interval shares a chronon with
	// the query interval.
	TimeIntersects
	// TimeDuring matches facts whose interval lies within the query
	// interval.
	TimeDuring
	// TimeEquals matches facts whose interval equals the query interval.
	TimeEquals
)

func (tf TimeFilter) admits(iv temporal.Interval) bool {
	switch tf.Kind {
	case TimeAny:
		return true
	case TimeIntersects:
		return iv.Intersects(tf.Interval)
	case TimeDuring:
		return tf.Interval.ContainsInterval(iv)
	case TimeEquals:
		return iv == tf.Interval
	default:
		return false
	}
}

// Pattern is a quad pattern: any combination of bound subject, predicate
// and object (zero Term = wildcard) plus a temporal filter.
type Pattern struct {
	S, P, O rdf.Term
	Time    TimeFilter
}

// Match invokes fn for each fact matching the pattern, in fact-id order
// for a given index, until fn returns false. The quad passed to fn is
// decoded on demand.
func (st *Store) Match(pat Pattern, fn func(FactID, rdf.Quad) bool) {
	ids, filter := st.candidates(pat)
	for _, id := range ids {
		f := st.facts[id]
		if filter != nil && !filter(f) {
			continue
		}
		if !pat.Time.admits(f.iv) {
			continue
		}
		if !fn(id, st.Fact(id)) {
			return
		}
	}
}

// MatchIDs returns the ids of all facts matching the pattern.
func (st *Store) MatchIDs(pat Pattern) []FactID {
	var out []FactID
	ids, filter := st.candidates(pat)
	for _, id := range ids {
		f := st.facts[id]
		if filter != nil && !filter(f) {
			continue
		}
		if !pat.Time.admits(f.iv) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Count returns the number of facts matching the pattern.
func (st *Store) Count(pat Pattern) int { return len(st.MatchIDs(pat)) }

// candidates picks the most selective index for the bound positions and
// returns the candidate id list plus a residual filter for positions the
// chosen index does not cover.
func (st *Store) candidates(pat Pattern) ([]FactID, func(fact) bool) {
	var (
		sID, pID, oID TermID
		sOK, pOK, oOK = true, true, true
	)
	if !pat.S.IsZero() {
		if sID, sOK = st.dict.Lookup(pat.S); !sOK {
			return nil, nil
		}
	} else {
		sID = NoTerm
	}
	if !pat.P.IsZero() {
		if pID, pOK = st.dict.Lookup(pat.P); !pOK {
			return nil, nil
		}
	} else {
		pID = NoTerm
	}
	if !pat.O.IsZero() {
		if oID, oOK = st.dict.Lookup(pat.O); !oOK {
			return nil, nil
		}
	} else {
		oID = NoTerm
	}

	switch {
	case sID != NoTerm && pID != NoTerm && oID != NoTerm:
		return st.bySP[pair(sID, pID)], func(f fact) bool { return f.o == oID }
	case sID != NoTerm && pID != NoTerm:
		return st.bySP[pair(sID, pID)], nil
	case pID != NoTerm && oID != NoTerm:
		return st.byPO[pair(pID, oID)], nil
	case sID != NoTerm && oID != NoTerm:
		return st.byS[sID], func(f fact) bool { return f.o == oID }
	case sID != NoTerm:
		return st.byS[sID], nil
	case oID != NoTerm:
		return st.byO[oID], nil
	case pID != NoTerm:
		// Predicate-only scans are the grounder's hot path; use the
		// interval index when the pattern is temporal.
		if pat.Time.Kind == TimeIntersects {
			return st.intervalIndexFor(pID).overlapping(pat.Time.Interval), nil
		}
		return st.byP[pID], nil
	default:
		all := make([]FactID, len(st.facts))
		for i := range all {
			all[i] = FactID(i)
		}
		return all, nil
	}
}

// PredicateIDs returns the distinct predicate codes in the store.
func (st *Store) PredicateIDs() []TermID {
	out := make([]TermID, 0, len(st.byP))
	for p := range st.byP {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredicateFacts returns the ids of all facts with the given predicate
// code. The returned slice must not be modified.
func (st *Store) PredicateFacts(p TermID) []FactID { return st.byP[p] }

// SubjectFacts returns the ids of all facts with the given subject code.
func (st *Store) SubjectFacts(s TermID) []FactID { return st.byS[s] }
