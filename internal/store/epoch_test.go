package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

func quad(s, p, o string, start, end int64, conf float64) rdf.Quad {
	return rdf.NewQuad(s, p, o, temporal.MustNew(start, end), conf)
}

func TestEpochAdvancesPerMutation(t *testing.T) {
	st := New()
	if st.Epoch() != 0 {
		t.Fatalf("empty store epoch = %d, want 0", st.Epoch())
	}
	id, err := st.Add(quad("a", "p", "b", 1, 2, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("after add epoch = %d, want 1", st.Epoch())
	}
	// Duplicate add with lower confidence: no-op, no epoch.
	if _, err := st.Add(quad("a", "p", "b", 1, 2, 0.3)); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("no-op dup add advanced epoch to %d", st.Epoch())
	}
	// Higher confidence: update, epoch advances.
	if _, err := st.Add(quad("a", "p", "b", 1, 2, 0.9)); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 2 {
		t.Fatalf("confidence raise epoch = %d, want 2", st.Epoch())
	}
	// Remove, then revive under the same id.
	rid, ok := st.Remove(quad("a", "p", "b", 1, 2, 0))
	if !ok || rid != id {
		t.Fatalf("remove: id %d ok %v, want %d true", rid, ok, id)
	}
	if st.Len() != 0 || st.Live(id) {
		t.Fatal("removed fact still live")
	}
	if _, ok := st.Remove(quad("a", "p", "b", 1, 2, 0)); ok {
		t.Fatal("double remove succeeded")
	}
	rid2, err := st.Add(quad("a", "p", "b", 1, 2, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 != id {
		t.Fatalf("revival changed id: %d -> %d", id, rid2)
	}
	if st.Confidence(id) != 0.4 {
		t.Fatalf("revival kept old confidence %g", st.Confidence(id))
	}
	if st.Len() != 1 || st.IDBound() != 1 {
		t.Fatalf("Len=%d IDBound=%d after revival, want 1/1", st.Len(), st.IDBound())
	}
}

func TestDeltaSinceBoundaryEpochs(t *testing.T) {
	st := New()
	q1 := quad("a", "p", "b", 1, 2, 0.5)
	q2 := quad("c", "p", "d", 1, 2, 0.5)
	q3 := quad("e", "p", "f", 1, 2, 0.5)
	id1, _ := st.Add(q1) // epoch 1
	e1 := st.Epoch()
	st.Add(q2)    // epoch 2
	st.Remove(q1) // epoch 3
	st.Add(q3)    // epoch 4
	eNow := st.Epoch()

	// Delta from the current epoch is empty.
	if d := st.DeltaSince(eNow); !d.Empty() {
		t.Fatalf("DeltaSince(now) = %+v, want empty", d)
	}
	// A future epoch is empty too.
	if d := st.DeltaSince(eNow + 10); !d.Empty() {
		t.Fatalf("DeltaSince(future) = %+v, want empty", d)
	}
	// From epoch 0: q1 was never live at 0 and is dead now — absent.
	d := st.DeltaSince(0)
	if len(d.Added) != 2 || len(d.Removed) != 0 || len(d.Updated) != 0 {
		t.Fatalf("DeltaSince(0) = %+v, want 2 adds", d)
	}
	// From e1 (right after q1's add): q1 shows as removed.
	d = st.DeltaSince(e1)
	if len(d.Added) != 2 || len(d.Removed) != 1 || d.Removed[0] != id1 {
		t.Fatalf("DeltaSince(e1) = %+v", d)
	}
	// Remove + revive across the window nets to Updated.
	st.Remove(q2)
	st.Add(q2)
	d = st.DeltaSince(eNow)
	if len(d.Updated) != 1 || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("remove+revive delta = %+v, want 1 update", d)
	}
	// Add + remove inside the window nets to nothing.
	eBefore := st.Epoch()
	st.Add(quad("x", "p", "y", 1, 2, 0.5))
	st.Remove(quad("x", "p", "y", 1, 2, 0.5))
	if d := st.DeltaSince(eBefore); !d.Empty() {
		t.Fatalf("add+remove delta = %+v, want empty", d)
	}
}

func TestCompactLogKeepsDeltaCorrect(t *testing.T) {
	st := New()
	q1 := quad("a", "p", "b", 1, 2, 0.5)
	q2 := quad("c", "p", "d", 1, 2, 0.5)
	st.Add(q1)
	e1 := st.Epoch()
	st.Add(q2)
	st.Remove(q1)
	eNow := st.Epoch()

	st.CompactLog(eNow)
	// At or after the floor: the (empty) log answers.
	if d := st.DeltaSince(eNow); !d.Empty() {
		t.Fatalf("DeltaSince(now) after compaction = %+v", d)
	}
	// Below the floor: the full-scan fallback classifies by lifespan —
	// q2 added, q1 removed, nothing live at both points.
	d := st.DeltaSince(e1)
	if len(d.Added) != 1 || len(d.Removed) != 1 || len(d.Updated) != 0 {
		t.Fatalf("DeltaSince(e1) after compaction = %+v", d)
	}
	// New mutations land in the fresh log and answer precisely.
	st.Add(quad("e", "p", "f", 1, 2, 0.5))
	d = st.DeltaSince(eNow)
	if len(d.Added) != 1 || len(d.Removed) != 0 || len(d.Updated) != 0 {
		t.Fatalf("post-compaction delta = %+v", d)
	}
	// Facts live across the whole compacted window appear as
	// conservative updates on the fallback path.
	d = st.DeltaSince(e1 + 1) // q2 live at e1+1 and now; below the floor
	if len(d.Updated) != 1 {
		t.Fatalf("conservative update missing: %+v", d)
	}
}

func TestViewPinsEpoch(t *testing.T) {
	st := New()
	st.Add(quad("a", "p", "b", 1, 2, 0.5))
	st.Add(quad("a", "p", "c", 3, 4, 0.5))
	v := st.ReadView()

	// Mutations after the pin are invisible to the view.
	st.Add(quad("a", "p", "d", 5, 6, 0.5))
	st.Remove(quad("a", "p", "b", 1, 2, 0))
	if v.Len() != 2 {
		t.Fatalf("view Len = %d, want 2", v.Len())
	}
	ids := v.MatchIDs(Pattern{S: rdf.NewIRI("a")})
	if len(ids) != 2 {
		t.Fatalf("view sees %d facts, want 2", len(ids))
	}
	if !v.Contains(quad("a", "p", "b", 1, 2, 0)) {
		t.Fatal("view lost the fact removed after pinning")
	}
	if v.Contains(quad("a", "p", "d", 5, 6, 0)) {
		t.Fatal("view sees a fact added after pinning")
	}
	// The store itself sees current state.
	if st.Len() != 2 || st.Contains(quad("a", "p", "b", 1, 2, 0)) {
		t.Fatal("store state wrong after mutations")
	}
	// A fresh view sees the new state.
	if got := st.ReadView().MatchIDs(Pattern{S: rdf.NewIRI("a")}); len(got) != 2 {
		t.Fatalf("fresh view sees %d facts, want 2 (c and d)", len(got))
	}
}

// TestConcurrentMatchDuringMutation drives readers over pinned views
// while a writer adds and removes facts. Run under -race: the store must
// stay memory-safe and each view must keep seeing exactly its pinned
// state.
func TestConcurrentMatchDuringMutation(t *testing.T) {
	st := New()
	const base = 200
	for i := 0; i < base; i++ {
		st.Add(quad(fmt.Sprintf("s%d", i%10), "p", fmt.Sprintf("o%d", i), int64(i), int64(i+5), 0.5))
	}
	v := st.ReadView()
	wantLen := v.Len()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				v.Match(Pattern{S: rdf.NewIRI(fmt.Sprintf("s%d", r))}, func(id FactID, q rdf.Quad) bool {
					n++
					return true
				})
				if n != base/10 {
					t.Errorf("pinned view saw %d facts for subject, want %d", n, base/10)
					return
				}
				if v.Len() != wantLen {
					t.Errorf("pinned view Len changed: %d", v.Len())
					return
				}
				// Fresh views race with the writer but must not crash or
				// see torn state (count bounded by total adds).
				ids := st.MatchIDs(Pattern{P: rdf.NewIRI("p")})
				if len(ids) > base+100 {
					t.Errorf("implausible match count %d", len(ids))
					return
				}
			}
		}(r)
	}
	// Writer: interleave adds, removes and revivals.
	for i := 0; i < 100; i++ {
		q := quad(fmt.Sprintf("s%d", i%10), "p", fmt.Sprintf("extra%d", i), int64(i), int64(i+3), 0.7)
		if _, err := st.Add(q); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			st.Remove(q)
		}
		if i%7 == 0 {
			st.Remove(quad(fmt.Sprintf("s%d", i%10), "p", fmt.Sprintf("o%d", i), int64(i), int64(i+5), 0))
		}
	}
	close(stop)
	wg.Wait()
}

func TestTimeFilterEdgeIntervals(t *testing.T) {
	st := New()
	st.Add(quad("a", "p", "b", 10, 20, 0.5)) // the probe fact
	cases := []struct {
		name string
		f    TimeFilter
		want int
	}{
		{"any", TimeFilter{}, 1},
		{"intersects-touching-start", TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(5, 10)}, 1},
		{"intersects-touching-end", TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(20, 25)}, 1},
		{"intersects-before", TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(0, 9)}, 0},
		{"intersects-after", TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(21, 30)}, 0},
		{"intersects-point-inside", TimeFilter{Kind: TimeIntersects, Interval: temporal.Point(15)}, 1},
		{"during-exact", TimeFilter{Kind: TimeDuring, Interval: temporal.MustNew(10, 20)}, 1},
		{"during-wider", TimeFilter{Kind: TimeDuring, Interval: temporal.MustNew(9, 21)}, 1},
		{"during-short-left", TimeFilter{Kind: TimeDuring, Interval: temporal.MustNew(11, 21)}, 0},
		{"during-short-right", TimeFilter{Kind: TimeDuring, Interval: temporal.MustNew(9, 19)}, 0},
		{"equals-exact", TimeFilter{Kind: TimeEquals, Interval: temporal.MustNew(10, 20)}, 1},
		{"equals-off-by-one", TimeFilter{Kind: TimeEquals, Interval: temporal.MustNew(10, 19)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := st.Count(Pattern{Time: tc.f}); got != tc.want {
				t.Errorf("Count = %d, want %d", got, tc.want)
			}
			// Predicate-bound patterns route through the interval index
			// for TimeIntersects; results must agree with the scan.
			if got := st.Count(Pattern{P: rdf.NewIRI("p"), Time: tc.f}); got != tc.want {
				t.Errorf("indexed Count = %d, want %d", got, tc.want)
			}
		})
	}
	// Tombstoned facts match nothing.
	st.Remove(quad("a", "p", "b", 10, 20, 0))
	if got := st.Count(Pattern{}); got != 0 {
		t.Errorf("Count after remove = %d, want 0", got)
	}
}

func TestCountMatchesMatchIDs(t *testing.T) {
	st := New()
	for i := 0; i < 50; i++ {
		st.Add(quad(fmt.Sprintf("s%d", i%5), "p", fmt.Sprintf("o%d", i%7), int64(i), int64(i+10), 0.5))
	}
	st.Remove(quad("s0", "p", "o0", 0, 10, 0))
	pats := []Pattern{
		{},
		{S: rdf.NewIRI("s1")},
		{P: rdf.NewIRI("p")},
		{O: rdf.NewIRI("o3")},
		{S: rdf.NewIRI("s2"), P: rdf.NewIRI("p")},
		{P: rdf.NewIRI("p"), Time: TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(20, 25)}},
		{S: rdf.NewIRI("nope")},
	}
	for i, pat := range pats {
		if got, want := st.Count(pat), len(st.MatchIDs(pat)); got != want {
			t.Errorf("pattern %d: Count=%d MatchIDs=%d", i, got, want)
		}
	}
}
