package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// tombstonedStore returns a store with live facts, a tombstone and a
// multi-epoch history — the state a v2 snapshot must preserve exactly.
func tombstonedStore(t testing.TB) *Store {
	t.Helper()
	st := newFigure1Store(t)
	if _, ok := st.Remove(rdf.NewQuad("CR", "coach", "Napoli", temporal.MustNew(2001, 2003), 0.6)); !ok {
		t.Fatal("Remove failed")
	}
	if _, err := st.Add(rdf.NewQuad("CR", "coach", "Madrid", temporal.MustNew(2005, 2007), 0.4)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	return st
}

func TestSnapshotTombstoneRoundTrip(t *testing.T) {
	st := tombstonedStore(t)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != st.Len() || back.IDBound() != st.IDBound() {
		t.Fatalf("Len/IDBound = %d/%d, want %d/%d", back.Len(), back.IDBound(), st.Len(), st.IDBound())
	}
	if back.Epoch() != st.Epoch() {
		t.Fatalf("Epoch = %d, want %d", back.Epoch(), st.Epoch())
	}
	if back.CompactedEpoch() != st.Epoch() {
		t.Fatalf("CompactedEpoch = %d, want the watermark %d", back.CompactedEpoch(), st.Epoch())
	}
	// Dense ids, liveness and content survive — including the tombstone.
	for id := 0; id < st.IDBound(); id++ {
		if back.Live(FactID(id)) != st.Live(FactID(id)) {
			t.Errorf("fact %d liveness mismatch", id)
		}
		if back.Fact(FactID(id)) != st.Fact(FactID(id)) {
			t.Errorf("fact %d mismatch", id)
		}
	}
}

// encodeV1 writes the legacy TQS1 snapshot layout: live facts only, no
// epoch watermark, no checksum trailer. Save no longer produces it, so
// the compatibility test constructs it by hand.
func encodeV1(g rdf.Graph) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	sv := func(v int64) { buf.Write(tmp[:binary.PutVarint(tmp[:], v)]) }
	str := func(s string) { uv(uint64(len(s))); buf.WriteString(s) }

	codes := map[rdf.Term]uint64{}
	var terms []rdf.Term
	code := func(tm rdf.Term) uint64 {
		if c, ok := codes[tm]; ok {
			return c
		}
		terms = append(terms, tm)
		codes[tm] = uint64(len(terms))
		return codes[tm]
	}
	type rec struct{ s, p, o uint64 }
	recs := make([]rec, len(g))
	for i, q := range g {
		recs[i] = rec{code(q.Subject), code(q.Predicate), code(q.Object)}
	}

	buf.Write([]byte("TQS1"))
	uv(uint64(len(terms)))
	for _, tm := range terms {
		buf.WriteByte(byte(tm.Kind))
		str(tm.Value)
		str(tm.Datatype)
		str(tm.Lang)
	}
	uv(uint64(len(g)))
	for i, q := range g {
		uv(recs[i].s)
		uv(recs[i].p)
		uv(recs[i].o)
		sv(q.Interval.Start)
		sv(q.Interval.End)
		var cb [8]byte
		binary.LittleEndian.PutUint64(cb[:], math.Float64bits(q.Confidence))
		buf.Write(cb[:])
	}
	return buf.Bytes()
}

func TestSnapshotV1Compat(t *testing.T) {
	g := figure1Graph()
	back, err := Load(bytes.NewReader(encodeV1(g)))
	if err != nil {
		t.Fatalf("Load(v1): %v", err)
	}
	if back.Len() != len(g) {
		t.Fatalf("Len = %d, want %d", back.Len(), len(g))
	}
	for i, q := range g {
		if got := back.Fact(FactID(i)); got != q {
			t.Errorf("fact %d = %v, want %v", i, got, q)
		}
	}
	// A v1 load starts a fresh epoch history: one epoch per add.
	if back.Epoch() != Epoch(len(g)) {
		t.Errorf("Epoch = %d, want %d", back.Epoch(), len(g))
	}
	if got := back.Count(Pattern{P: rdf.NewIRI("coach")}); got != 3 {
		t.Errorf("Count(coach) = %d, want 3", got)
	}
}

// FuzzSnapshotLoad drives Load with arbitrary bytes: it must reject
// corruption with an error — never panic, never build a malformed store
// — and anything it accepts must itself survive a save/load round trip.
func FuzzSnapshotLoad(f *testing.F) {
	st := New()
	if err := st.AddGraph(figure1Graph()); err != nil {
		f.Fatal(err)
	}
	st.Remove(rdf.NewQuad("CR", "coach", "Napoli", temporal.MustNew(2001, 2003), 0.6))
	var v2 bytes.Buffer
	if err := st.Save(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(encodeV1(figure1Graph()))
	f.Add([]byte{})
	f.Add([]byte("TQS2"))
	f.Add([]byte("TQS1\x01"))
	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Fatalf("re-saving an accepted snapshot: %v", err)
		}
		back, err := Load(&out)
		if err != nil {
			t.Fatalf("re-loading an accepted snapshot: %v", err)
		}
		if back.Len() != loaded.Len() || back.IDBound() != loaded.IDBound() || back.Epoch() != loaded.Epoch() {
			t.Fatalf("round trip drifted: %d/%d/%d facts/ids/epoch, want %d/%d/%d",
				back.Len(), back.IDBound(), back.Epoch(), loaded.Len(), loaded.IDBound(), loaded.Epoch())
		}
	})
}

// gateWriter blocks the first write until released, pinning a snapshot
// serialization mid-stream.
type gateWriter struct {
	reached chan struct{}
	release chan struct{}
	once    sync.Once
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		close(w.reached)
		<-w.release
	})
	return len(p), nil
}

// TestCheckpointDuringIngest pins a Save mid-serialization and proves
// writers still make progress: the read lock is only held for the
// epoch-pinned copy, never across the encoding pass. Under the old
// whole-serialization lock hold, the adds below would block until the
// writer was released and the test would time out.
func TestCheckpointDuringIngest(t *testing.T) {
	st := newFigure1Store(t)
	w := &gateWriter{reached: make(chan struct{}), release: make(chan struct{})}
	saved := make(chan error, 1)
	go func() { saved <- st.Save(w) }()
	<-w.reached

	// The encoder is stalled inside its output stream; concurrent adds
	// must complete anyway.
	added := make(chan error, 1)
	go func() {
		for i := int64(0); i < 100; i++ {
			q := rdf.Quad{
				Subject:    rdf.NewIRI("S"),
				Predicate:  rdf.NewIRI("ingest"),
				Object:     rdf.Integer(i),
				Interval:   temporal.MustNew(i, i+1),
				Confidence: 0.5,
			}
			if _, err := st.Add(q); err != nil {
				added <- err
				return
			}
		}
		added <- nil
	}()
	select {
	case err := <-added:
		if err != nil {
			t.Fatalf("Add during Save: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("adds blocked behind an in-flight Save")
	}
	select {
	case err := <-saved:
		t.Fatalf("Save returned (%v) before its writer was released", err)
	default:
	}
	close(w.release)
	if err := <-saved; err != nil {
		t.Fatalf("Save: %v", err)
	}
}
