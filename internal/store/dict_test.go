package store

import (
	"testing"

	"repro/internal/rdf"
)

// FuzzDictRoundTrip drives the hash-with-spill dictionary with
// adversarial term pairs: interning must be idempotent (Encode twice →
// same code), Lookup must agree with Encode, Decode must return the
// exact term, and re-encoding the terms in code order — which is what
// snapshot Load does — must reassign identical codes.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add(uint8(0), "s", "", "", uint8(1), "42", "xsd:int", "")
	f.Add(uint8(1), "hello", "", "en", uint8(1), "hello", "", "en")
	f.Add(uint8(0), "ab", "c", "", uint8(0), "a", "bc", "")
	f.Add(uint8(2), "", "", "", uint8(2), "", "", "")
	f.Fuzz(func(t *testing.T, k1 uint8, v1, d1, l1 string, k2 uint8, v2, d2, l2 string) {
		terms := []rdf.Term{
			{Kind: rdf.TermKind(k1 % 3), Value: v1, Datatype: d1, Lang: l1},
			{Kind: rdf.TermKind(k2 % 3), Value: v2, Datatype: d2, Lang: l2},
			rdf.NewIRI(v1 + v2),
		}
		dict := NewDict()
		ids := make([]TermID, len(terms))
		for i, tm := range terms {
			ids[i] = dict.Encode(tm)
			if ids[i] == NoTerm {
				t.Fatalf("Encode(%v) returned NoTerm", tm)
			}
		}
		for i, tm := range terms {
			if got := dict.Encode(tm); got != ids[i] {
				t.Fatalf("re-Encode(%v) = %d, first Encode gave %d", tm, got, ids[i])
			}
			got, ok := dict.Lookup(tm)
			if !ok || got != ids[i] {
				t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", tm, got, ok, ids[i])
			}
			if back := dict.Decode(ids[i]); back != tm {
				t.Fatalf("Decode(%d) = %v, want %v", ids[i], back, tm)
			}
		}
		// Distinct terms must have distinct codes.
		for i, tm := range terms {
			for j := range terms[:i] {
				if tm != terms[j] && ids[i] == ids[j] {
					t.Fatalf("distinct terms %v and %v share code %d", tm, terms[j], ids[i])
				}
			}
		}
		// Snapshot stability: Load re-encodes the persisted terms in
		// code order into a fresh dictionary; every term must get the
		// code it had before.
		reloaded := NewDict()
		for id := TermID(1); int(id) <= dict.Len(); id++ {
			if got := reloaded.Encode(dict.Decode(id)); got != id {
				t.Fatalf("reload assigned code %d to term %v, want %d", got, dict.Decode(id), id)
			}
		}
	})
}
