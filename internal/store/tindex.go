package store

import (
	"sort"

	"repro/internal/temporal"
)

// intervalIndex accelerates "facts of predicate p whose interval
// intersects [a,b]" queries, the dominant temporal access path during
// grounding. Facts are kept sorted by interval start; blocks of 64
// entries carry the maximum end seen in the block so whole blocks that
// end before the query starts are skipped. This gives the pruning power
// of an interval tree with the locality of a flat array.
type intervalIndex struct {
	ids    []FactID           // sorted by interval start (ties by id)
	starts []temporal.Chronon // parallel to ids
	ends   []temporal.Chronon // parallel to ids
	blkMax []temporal.Chronon // per 64-entry block: max end
}

const tidxBlock = 64

// intervalIndexFor returns (building lazily) the interval index for
// predicate p. The cache is mutex-guarded so concurrent readers — e.g.
// grounding workers matching through a View — can share the lazy build;
// index contents depend only on store state, so whichever reader builds
// first yields the same index.
func (st *Store) intervalIndexFor(p TermID) *intervalIndex {
	st.tidxMu.Lock()
	defer st.tidxMu.Unlock()
	if idx, ok := st.tidx[p]; ok {
		return idx
	}
	src := posting(st.byP, p)
	idx := &intervalIndex{
		ids:    make([]FactID, len(src)),
		starts: make([]temporal.Chronon, len(src)),
		ends:   make([]temporal.Chronon, len(src)),
	}
	copy(idx.ids, src)
	sort.Slice(idx.ids, func(i, j int) bool {
		a, b := st.facts[idx.ids[i]], st.facts[idx.ids[j]]
		if a.iv.Start != b.iv.Start {
			return a.iv.Start < b.iv.Start
		}
		return idx.ids[i] < idx.ids[j]
	})
	for i, id := range idx.ids {
		iv := st.facts[id].iv
		idx.starts[i] = iv.Start
		idx.ends[i] = iv.End
	}
	nBlocks := (len(src) + tidxBlock - 1) / tidxBlock
	idx.blkMax = make([]temporal.Chronon, nBlocks)
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*tidxBlock, min((b+1)*tidxBlock, len(src))
		mx := idx.ends[lo]
		for i := lo + 1; i < hi; i++ {
			if idx.ends[i] > mx {
				mx = idx.ends[i]
			}
		}
		idx.blkMax[b] = mx
	}
	st.tidx[p] = idx
	return idx
}

// overlapping returns the ids of indexed facts whose interval intersects
// q, in start order.
func (idx *intervalIndex) overlapping(q temporal.Interval) []FactID {
	// Facts with Start > q.End cannot intersect; binary search the cutoff.
	hi := sort.Search(len(idx.starts), func(i int) bool { return idx.starts[i] > q.End })
	var out []FactID
	for b := 0; b*tidxBlock < hi; b++ {
		if idx.blkMax[b] < q.Start {
			continue // whole block ends before the query starts
		}
		lo, end := b*tidxBlock, min((b+1)*tidxBlock, hi)
		for i := lo; i < end; i++ {
			if idx.ends[i] >= q.Start {
				out = append(out, idx.ids[i])
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
