package store

import (
	"sort"

	"repro/internal/temporal"
)

// PredicateStat summarises the facts of one predicate, as displayed by
// the Web UI's dataset page and the statistics view of Figure 8.
type PredicateStat struct {
	// Predicate is the predicate IRI.
	Predicate string
	// Count is the number of facts.
	Count int
	// Span is the smallest interval covering all validity intervals.
	Span temporal.Interval
	// MeanConfidence is the average confidence of the facts.
	MeanConfidence float64
	// Subjects is the number of distinct subjects.
	Subjects int
}

// Stats summarises a whole store.
type Stats struct {
	// Facts is the total number of distinct facts.
	Facts int
	// Terms is the number of distinct dictionary terms.
	Terms int
	// Predicates lists per-predicate statistics sorted by descending count.
	Predicates []PredicateStat
	// Span covers all validity intervals in the store.
	Span temporal.Interval
	// MeanConfidence is the global average confidence.
	MeanConfidence float64
}

// Stats computes summary statistics over the live facts of the store.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	live := len(st.facts) - st.dead
	out := Stats{Facts: live, Terms: st.dict.Len()}
	if live == 0 {
		return out
	}
	var confSum float64
	first := true
	var span temporal.Interval
	for _, f := range st.facts {
		if f.removedAt != 0 {
			continue
		}
		confSum += f.conf
		if first {
			span, first = f.iv, false
		} else {
			span = span.Span(f.iv)
		}
	}
	out.Span = span
	out.MeanConfidence = confSum / float64(live)

	preds := make([]TermID, 0, len(st.byP))
	for p := range st.byP {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	for _, p := range preds {
		ids := st.liveOnlyLocked(st.byP[p])
		if len(ids) == 0 {
			continue
		}
		ps := PredicateStat{Predicate: st.dict.Decode(p).Value, Count: len(ids)}
		subjects := make(map[TermID]struct{})
		var cs float64
		pspan := st.facts[ids[0]].iv
		for _, id := range ids {
			f := st.facts[id]
			cs += f.conf
			pspan = pspan.Span(f.iv)
			subjects[f.s] = struct{}{}
		}
		ps.Span = pspan
		ps.MeanConfidence = cs / float64(len(ids))
		ps.Subjects = len(subjects)
		out.Predicates = append(out.Predicates, ps)
	}
	sort.Slice(out.Predicates, func(i, j int) bool {
		if out.Predicates[i].Count != out.Predicates[j].Count {
			return out.Predicates[i].Count > out.Predicates[j].Count
		}
		return out.Predicates[i].Predicate < out.Predicates[j].Predicate
	})
	return out
}
