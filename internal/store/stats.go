package store

import (
	"sort"
	"unsafe"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// PredicateStat summarises the facts of one predicate, as displayed by
// the Web UI's dataset page and the statistics view of Figure 8.
type PredicateStat struct {
	// Predicate is the predicate IRI.
	Predicate string
	// Count is the number of facts.
	Count int
	// Span is the smallest interval covering all validity intervals.
	Span temporal.Interval
	// MeanConfidence is the average confidence of the facts.
	MeanConfidence float64
	// Subjects is the number of distinct subjects.
	Subjects int
}

// MemoryStats estimates the store's resident footprint from its own
// bookkeeping: fact table, change log, revive history, posting indexes
// and the interning dictionary. The numbers are layout-derived
// estimates (struct sizes plus measured container overheads), not a
// heap profile — their job is tracking the bytes/fact trajectory as
// the store scales, cheaply enough to serve from a live session.
type MemoryStats struct {
	// Terms is the number of distinct interned terms.
	Terms int `json:"terms"`
	// FactBytes covers the fact table, change log and revive history.
	FactBytes int64 `json:"fact_bytes"`
	// PostingBytes covers every posting index (term positions and the
	// duplicate-detection fact key index).
	PostingBytes int64 `json:"posting_bytes"`
	// DictBytes covers the interning dictionary, term structs and
	// string payloads included.
	DictBytes int64 `json:"dict_bytes"`
	// TotalBytes sums the components above.
	TotalBytes int64 `json:"total_bytes"`
	// BytesPerFact is TotalBytes over the total (live + tombstoned)
	// fact count; 0 for an empty store.
	BytesPerFact float64 `json:"bytes_per_fact"`
}

// Stats summarises a whole store.
type Stats struct {
	// Facts is the total number of distinct facts.
	Facts int
	// Terms is the number of distinct dictionary terms.
	Terms int
	// Predicates lists per-predicate statistics sorted by descending count.
	Predicates []PredicateStat
	// Span covers all validity intervals in the store.
	Span temporal.Interval
	// MeanConfidence is the global average confidence.
	MeanConfidence float64
	// Memory estimates the store's resident footprint.
	Memory MemoryStats
}

// mapEntryOverhead approximates Go's per-entry map cost beyond the key
// and value payload (bucket headers, tophash bytes, load-factor slack).
const mapEntryOverhead = 16

// sliceHeaderBytes is the cost of a slice header (ptr, len, cap).
const sliceHeaderBytes = 24

// MemoryStats estimates the store's resident footprint. It is O(terms +
// predicates), independent of the fact count, so it is cheap enough to
// serve from a live session's stats endpoint.
func (st *Store) MemoryStats() MemoryStats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.memoryLocked()
}

func (st *Store) memoryLocked() MemoryStats {
	m := MemoryStats{Terms: st.dict.Len()}

	// Fact table, change log, revive history.
	m.FactBytes = int64(cap(st.facts))*int64(unsafe.Sizeof(fact{})) +
		int64(cap(st.log))*int64(unsafe.Sizeof(Change{})) +
		int64(cap(st.history))*int64(unsafe.Sizeof(factSpan{}))

	// Posting indexes.
	idBytes := int64(unsafe.Sizeof(FactID(0)))
	postings := func(idx [][]FactID) (b int64) {
		b = int64(cap(idx)) * sliceHeaderBytes
		for _, ids := range idx {
			b += int64(cap(ids)) * idBytes
		}
		return b
	}
	m.PostingBytes = postings(st.byS) + postings(st.byP) + postings(st.byO)
	m.PostingBytes += int64(len(st.byFact))*(8+idBytes+mapEntryOverhead) +
		int64(cap(st.byFactSpill))*idBytes
	st.tidxMu.Lock()
	for _, idx := range st.tidx {
		m.PostingBytes += int64(unsafe.Sizeof(TermID(0))) + mapEntryOverhead + 4*sliceHeaderBytes +
			int64(cap(idx.ids))*idBytes +
			int64(cap(idx.starts)+cap(idx.ends)+cap(idx.blkMax))*int64(unsafe.Sizeof(temporal.Chronon(0)))
	}
	st.tidxMu.Unlock()

	// Interning dictionary: the hash→id forward map, the code-indexed
	// term slice, and the string payloads (counted once — the forward
	// direction holds no term copies).
	termStruct := int64(unsafe.Sizeof(rdf.Term{}))
	m.DictBytes = int64(len(st.dict.byHash))*(8+idBytes+mapEntryOverhead) +
		int64(cap(st.dict.spill))*idBytes +
		int64(cap(st.dict.toT))*termStruct
	for _, t := range st.dict.toT[1:] {
		m.DictBytes += int64(len(t.Value) + len(t.Datatype) + len(t.Lang))
	}

	m.TotalBytes = m.FactBytes + m.PostingBytes + m.DictBytes
	if n := len(st.facts); n > 0 {
		m.BytesPerFact = float64(m.TotalBytes) / float64(n)
	}
	return m
}

// Stats computes summary statistics over the live facts of the store.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	live := len(st.facts) - st.dead
	out := Stats{Facts: live, Terms: st.dict.Len(), Memory: st.memoryLocked()}
	if live == 0 {
		return out
	}
	var confSum float64
	first := true
	var span temporal.Interval
	for _, f := range st.facts {
		if f.removedAt != 0 {
			continue
		}
		confSum += f.conf
		if first {
			span, first = f.iv, false
		} else {
			span = span.Span(f.iv)
		}
	}
	out.Span = span
	out.MeanConfidence = confSum / float64(live)

	// The dense index walks predicate ids in ascending order.
	for p := range st.byP {
		ids := st.liveOnlyLocked(st.byP[p])
		if len(ids) == 0 {
			continue
		}
		p := TermID(p)
		ps := PredicateStat{Predicate: st.dict.Decode(p).Value, Count: len(ids)}
		subjects := make(map[TermID]struct{})
		var cs float64
		pspan := st.facts[ids[0]].iv
		for _, id := range ids {
			f := st.facts[id]
			cs += f.conf
			pspan = pspan.Span(f.iv)
			subjects[f.s] = struct{}{}
		}
		ps.Span = pspan
		ps.MeanConfidence = cs / float64(len(ids))
		ps.Subjects = len(subjects)
		out.Predicates = append(out.Predicates, ps)
	}
	sort.Slice(out.Predicates, func(i, j int) bool {
		if out.Predicates[i].Count != out.Predicates[j].Count {
			return out.Predicates[i].Count > out.Predicates[j].Count
		}
		return out.Predicates[i].Predicate < out.Predicates[j].Predicate
	})
	return out
}
