package store

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

func figure1Graph() rdf.Graph {
	return rdf.Graph{
		rdf.NewQuad("CR", "coach", "Chelsea", temporal.MustNew(2000, 2004), 0.9),
		rdf.NewQuad("CR", "coach", "Leicester", temporal.MustNew(2015, 2017), 0.7),
		rdf.NewQuad("CR", "playsFor", "Palermo", temporal.MustNew(1984, 1986), 0.5),
		{Subject: rdf.NewIRI("CR"), Predicate: rdf.NewIRI("birthDate"), Object: rdf.Integer(1951),
			Interval: temporal.MustNew(1951, 2017), Confidence: 1.0},
		rdf.NewQuad("CR", "coach", "Napoli", temporal.MustNew(2001, 2003), 0.6),
	}
}

func newFigure1Store(t testing.TB) *Store {
	t.Helper()
	st := New()
	if err := st.AddGraph(figure1Graph()); err != nil {
		t.Fatalf("AddGraph: %v", err)
	}
	return st
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []rdf.Term{
		rdf.NewIRI("a"), rdf.NewLiteral("a"), rdf.NewBlank("a"),
		rdf.NewTypedLiteral("1", rdf.XSDInteger), rdf.NewLangLiteral("1", "en"),
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
	}
	// All distinct.
	seen := map[TermID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id for distinct terms")
		}
		seen[id] = true
	}
	// Idempotent and decodable.
	for i, tm := range terms {
		if d.Encode(tm) != ids[i] {
			t.Error("Encode not idempotent")
		}
		if d.Decode(ids[i]) != tm {
			t.Error("Decode mismatch")
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
	if _, ok := d.Lookup(rdf.NewIRI("missing")); ok {
		t.Error("Lookup of unseen term should fail")
	}
}

func TestDictDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decode(0) should panic")
		}
	}()
	NewDict().Decode(0)
}

func TestAddAndFact(t *testing.T) {
	st := newFigure1Store(t)
	if st.Len() != 5 {
		t.Fatalf("Len = %d, want 5", st.Len())
	}
	for i, want := range figure1Graph() {
		if got := st.Fact(FactID(i)); got != want {
			t.Errorf("Fact(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	st := New()
	if _, err := st.Add(rdf.Quad{}); err == nil {
		t.Error("zero quad should be rejected")
	}
}

func TestAddDeduplicatesKeepsMaxConfidence(t *testing.T) {
	st := New()
	q := rdf.NewQuad("a", "p", "b", temporal.MustNew(1, 2), 0.4)
	id1, _ := st.Add(q)
	q.Confidence = 0.8
	id2, _ := st.Add(q)
	if id1 != id2 {
		t.Fatal("duplicate statement should return original id")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if got := st.Confidence(id1); got != 0.8 {
		t.Errorf("Confidence = %g, want max 0.8", got)
	}
	q.Confidence = 0.3
	st.Add(q)
	if got := st.Confidence(id1); got != 0.8 {
		t.Errorf("Confidence lowered to %g", got)
	}
}

func TestContains(t *testing.T) {
	st := newFigure1Store(t)
	if !st.Contains(figure1Graph()[0]) {
		t.Error("Contains should find fact 0")
	}
	if st.Contains(rdf.NewQuad("CR", "coach", "Juventus", temporal.MustNew(2000, 2004), 0.9)) {
		t.Error("Contains found a missing fact")
	}
}

func TestMatchPatterns(t *testing.T) {
	st := newFigure1Store(t)
	tests := []struct {
		name string
		pat  Pattern
		want int
	}{
		{"all", Pattern{}, 5},
		{"by predicate", Pattern{P: rdf.NewIRI("coach")}, 3},
		{"by subject", Pattern{S: rdf.NewIRI("CR")}, 5},
		{"by object", Pattern{O: rdf.NewIRI("Chelsea")}, 1},
		{"s+p", Pattern{S: rdf.NewIRI("CR"), P: rdf.NewIRI("coach")}, 3},
		{"p+o", Pattern{P: rdf.NewIRI("coach"), O: rdf.NewIRI("Napoli")}, 1},
		{"s+o", Pattern{S: rdf.NewIRI("CR"), O: rdf.NewIRI("Palermo")}, 1},
		{"s+p+o", Pattern{S: rdf.NewIRI("CR"), P: rdf.NewIRI("coach"), O: rdf.NewIRI("Chelsea")}, 1},
		{"unknown term", Pattern{S: rdf.NewIRI("nobody")}, 0},
		{"time intersects", Pattern{P: rdf.NewIRI("coach"),
			Time: TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(2001, 2002)}}, 2},
		{"time during", Pattern{
			Time: TimeFilter{Kind: TimeDuring, Interval: temporal.MustNew(2000, 2010)}}, 2},
		{"time equals", Pattern{
			Time: TimeFilter{Kind: TimeEquals, Interval: temporal.MustNew(2015, 2017)}}, 1},
	}
	for _, tc := range tests {
		if got := st.Count(tc.pat); got != tc.want {
			t.Errorf("%s: Count = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	st := newFigure1Store(t)
	calls := 0
	st.Match(Pattern{}, func(FactID, rdf.Quad) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("Match visited %d facts after early stop, want 2", calls)
	}
}

func TestEncodedAccessors(t *testing.T) {
	st := newFigure1Store(t)
	s, p, o := st.EncodedTriple(0)
	if st.Dict().Decode(s).Value != "CR" || st.Dict().Decode(p).Value != "coach" || st.Dict().Decode(o).Value != "Chelsea" {
		t.Error("EncodedTriple decode mismatch")
	}
	if st.Interval(0) != temporal.MustNew(2000, 2004) {
		t.Error("Interval mismatch")
	}
	if st.Confidence(0) != 0.9 {
		t.Error("Confidence mismatch")
	}
}

func TestGraphMaterialise(t *testing.T) {
	st := newFigure1Store(t)
	g := st.Graph()
	if len(g) != 5 {
		t.Fatalf("Graph len = %d", len(g))
	}
	for i, q := range figure1Graph() {
		if g[i] != q {
			t.Errorf("Graph[%d] mismatch", i)
		}
	}
}

func TestIntervalIndexAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := New()
	type rec struct {
		id FactID
		iv temporal.Interval
	}
	var recs []rec
	for i := 0; i < 3000; i++ {
		s := rng.Int63n(1000)
		iv := temporal.Interval{Start: s, End: s + rng.Int63n(50)}
		q := rdf.Quad{
			Subject:    rdf.NewIRI("s" + string(rune('a'+i%26))),
			Predicate:  rdf.NewIRI("p"),
			Object:     rdf.Integer(int64(i)),
			Interval:   iv,
			Confidence: 0.5,
		}
		id, err := st.Add(q)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{id, iv})
	}
	for trial := 0; trial < 200; trial++ {
		qs := rng.Int63n(1100)
		q := temporal.Interval{Start: qs, End: qs + rng.Int63n(100)}
		got := st.MatchIDs(Pattern{P: rdf.NewIRI("p"),
			Time: TimeFilter{Kind: TimeIntersects, Interval: q}})
		gotSet := make(map[FactID]bool, len(got))
		for _, id := range got {
			gotSet[id] = true
		}
		naive := 0
		for _, r := range recs {
			if r.iv.Intersects(q) {
				naive++
				if !gotSet[r.id] {
					t.Fatalf("query %v: missing fact %d (%v)", q, r.id, r.iv)
				}
			}
		}
		if naive != len(got) {
			t.Fatalf("query %v: got %d, naive %d", q, len(got), naive)
		}
	}
}

func TestIntervalIndexInvalidatedOnAdd(t *testing.T) {
	st := New()
	p := rdf.NewIRI("p")
	st.Add(rdf.NewQuad("a", "p", "x", temporal.MustNew(1, 2), 0.5))
	pat := Pattern{P: p, Time: TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(0, 10)}}
	if got := st.Count(pat); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	st.Add(rdf.NewQuad("b", "p", "y", temporal.MustNew(3, 4), 0.5))
	if got := st.Count(pat); got != 2 {
		t.Fatalf("Count after add = %d, want 2 (index must be invalidated)", got)
	}
}

func TestStats(t *testing.T) {
	st := newFigure1Store(t)
	stats := st.Stats()
	if stats.Facts != 5 {
		t.Errorf("Facts = %d", stats.Facts)
	}
	if stats.Span != temporal.MustNew(1951, 2017) {
		t.Errorf("Span = %v", stats.Span)
	}
	if len(stats.Predicates) != 3 {
		t.Fatalf("Predicates = %v", stats.Predicates)
	}
	// Sorted by count descending: coach(3) first.
	if stats.Predicates[0].Predicate != "coach" || stats.Predicates[0].Count != 3 {
		t.Errorf("top predicate = %+v", stats.Predicates[0])
	}
	if stats.Predicates[0].Subjects != 1 {
		t.Errorf("coach subjects = %d", stats.Predicates[0].Subjects)
	}
	wantMean := (0.9 + 0.7 + 0.6) / 3
	if got := stats.Predicates[0].MeanConfidence; got < wantMean-1e-9 || got > wantMean+1e-9 {
		t.Errorf("coach mean confidence = %g, want %g", got, wantMean)
	}
	if got := New().Stats(); got.Facts != 0 || len(got.Predicates) != 0 {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := newFigure1Store(t)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != st.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		if back.Fact(FactID(i)) != st.Fact(FactID(i)) {
			t.Errorf("fact %d mismatch", i)
		}
	}
	// Indexes must work after load.
	if got := back.Count(Pattern{P: rdf.NewIRI("coach")}); got != 3 {
		t.Errorf("loaded Count(coach) = %d, want 3", got)
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot should fail")
	}
	if _, err := Load(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated body.
	st := newFigure1Store(t)
	var buf bytes.Buffer
	st.Save(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

// TestSnapshotRoundTripProperty: any randomly generated store survives a
// save/load cycle byte-for-byte in content.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New()
		for i := 0; i < int(n%40); i++ {
			s := rng.Int63n(100)
			q := rdf.Quad{
				Subject:    rdf.NewIRI(string(rune('a' + rng.Intn(26)))),
				Predicate:  rdf.NewIRI(string(rune('p' + rng.Intn(4)))),
				Object:     rdf.Integer(rng.Int63n(50)),
				Interval:   temporal.Interval{Start: s, End: s + rng.Int63n(20)},
				Confidence: (float64(rng.Intn(100)) + 1) / 100,
			}
			if _, err := st.Add(q); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil || back.Len() != st.Len() {
			return false
		}
		for i := 0; i < st.Len(); i++ {
			if back.Fact(FactID(i)) != st.Fact(FactID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStoreAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	quads := make([]rdf.Quad, 4096)
	for i := range quads {
		s := rng.Int63n(1000)
		quads[i] = rdf.Quad{
			Subject:    rdf.NewIRI("player" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))),
			Predicate:  rdf.NewIRI("playsFor"),
			Object:     rdf.NewIRI("team" + string(rune('a'+i%32))),
			Interval:   temporal.Interval{Start: s, End: s + 5},
			Confidence: 0.9,
		}
	}
	b.ResetTimer()
	st := New()
	for i := 0; i < b.N; i++ {
		st.Add(quads[i%len(quads)])
	}
}

func BenchmarkStoreMatchByPredicate(b *testing.B) {
	st := benchStore(b, 20000)
	pat := Pattern{P: rdf.NewIRI("playsFor"),
		Time: TimeFilter{Kind: TimeIntersects, Interval: temporal.MustNew(500, 510)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.MatchIDs(pat)
	}
}

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	st := New()
	for i := 0; i < n; i++ {
		s := rng.Int63n(1000)
		q := rdf.Quad{
			Subject:    rdf.Integer(int64(i)),
			Predicate:  rdf.NewIRI("playsFor"),
			Object:     rdf.NewIRI("team" + string(rune('a'+i%32))),
			Interval:   temporal.Interval{Start: s, End: s + rng.Int63n(30)},
			Confidence: 0.9,
		}
		// Integer subject is a literal — use an IRI instead.
		q.Subject = rdf.NewIRI("p" + q.Object.Value + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)))
		if _, err := st.Add(q); err != nil {
			b.Fatal(err)
		}
	}
	return st
}
