package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// Binary snapshot format. The store persists as:
//
//	magic "TQS1" | uvarint termCount | terms... | uvarint factCount | facts...
//
// Each term is kind(1B) + 3 length-prefixed strings (value, datatype,
// lang). Each fact is 3 term-id uvarints + 2 zig-zag varint chronons +
// 8-byte confidence. The format is independent of map iteration order and
// round-trips exactly.

var snapshotMagic = [4]byte{'T', 'Q', 'S', '1'}

// Save writes a binary snapshot of the store's live facts. Tombstones,
// epochs and the change log are not persisted: a snapshot captures the
// logical graph, and Load starts a fresh epoch history.
func (st *Store) Save(w io.Writer) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := writeUvarint(uint64(st.dict.Len())); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	for id := TermID(1); int(id) <= st.dict.Len(); id++ {
		t := st.dict.Decode(id)
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		for _, s := range []string{t.Value, t.Datatype, t.Lang} {
			if err := writeString(s); err != nil {
				return fmt.Errorf("store: snapshot: %w", err)
			}
		}
	}
	if err := writeUvarint(uint64(len(st.facts) - st.dead)); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	for _, f := range st.facts {
		if f.removedAt != 0 {
			continue
		}
		if err := writeUvarint(uint64(f.s)); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		if err := writeUvarint(uint64(f.p)); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		if err := writeUvarint(uint64(f.o)); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		if err := writeVarint(f.iv.Start); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		if err := writeVarint(f.iv.End); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		var cb [8]byte
		binary.LittleEndian.PutUint64(cb[:], math.Float64bits(f.conf))
		if _, err := bw.Write(cb[:]); err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
	}
	return bw.Flush()
}

// Load reads a binary snapshot into a fresh store.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("store: snapshot: bad magic %q", magic[:])
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<30 {
			return "", fmt.Errorf("string length %d too large", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	st := New()
	termCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	for i := uint64(0); i < termCount; i++ {
		kindB, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: term %d: %w", i, err)
		}
		var t rdf.Term
		t.Kind = rdf.TermKind(kindB)
		if t.Value, err = readString(); err != nil {
			return nil, fmt.Errorf("store: snapshot: term %d: %w", i, err)
		}
		if t.Datatype, err = readString(); err != nil {
			return nil, fmt.Errorf("store: snapshot: term %d: %w", i, err)
		}
		if t.Lang, err = readString(); err != nil {
			return nil, fmt.Errorf("store: snapshot: term %d: %w", i, err)
		}
		st.dict.Encode(t)
	}
	factCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	for i := uint64(0); i < factCount; i++ {
		readID := func() (TermID, error) {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, err
			}
			if v == 0 || v > uint64(st.dict.Len()) {
				return 0, fmt.Errorf("term id %d out of range", v)
			}
			return TermID(v), nil
		}
		s, err := readID()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		p, err := readID()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		o, err := readID()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		start, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		end, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		var cb [8]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		conf := math.Float64frombits(binary.LittleEndian.Uint64(cb[:]))
		q := rdf.Quad{
			Subject:    st.dict.Decode(s),
			Predicate:  st.dict.Decode(p),
			Object:     st.dict.Decode(o),
			Interval:   temporal.Interval{Start: start, End: end},
			Confidence: conf,
		}
		if _, err := st.Add(q); err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
	}
	return st, nil
}
