package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/rdf"
)

// Binary snapshot format, version 2 ("TQS2"):
//
//	magic "TQS2" | uvarint epoch | uvarint termCount | terms... |
//	uvarint factCount | facts... | crc32c(4B LE)
//
// Each term is kind(1B) + 3 length-prefixed strings (value, datatype,
// lang), in dictionary-code order so Load reassigns identical codes.
// Each fact is 3 term-id uvarints + 2 zig-zag varint chronons + 8-byte
// LE confidence + addedAt/removedAt epoch uvarints. Unlike v1, facts are
// written in dense id order *including tombstones*, so FactIDs — which
// the solver's canonical evidence ordering and the WAL's replay records
// depend on — survive a save/load round trip exactly. The epoch
// watermark is persisted so recovery knows where WAL replay resumes; the
// trailer is CRC-32C over everything before it. The format is
// independent of map iteration order and round-trips exactly.
//
// Version 1 ("TQS1") — live facts only, no epochs, no checksum — is
// still readable; loading it re-Adds each fact into a fresh epoch
// history.

var (
	snapshotMagicV1 = [4]byte{'T', 'Q', 'S', '1'}
	snapshotMagicV2 = [4]byte{'T', 'Q', 'S', '2'}
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is an epoch-pinned, immutable copy of the store's persistent
// state, captured by Checkpoint. Serializing it (WriteTo) needs no lock:
// the fact records are a private copy and the term slice's published
// entries are immutable.
type Snapshot struct {
	epoch Epoch
	terms []rdf.Term // code-indexed, entry 0 unused; immutable prefix
	facts []fact     // private copy, dense id order
	dead  int
}

// Checkpoint captures an epoch-pinned copy of the store under a brief
// read lock — one fact-table memcpy plus two header reads, never a full
// serialization pass — so writers resume while the snapshot is encoded.
func (st *Store) Checkpoint() *Snapshot {
	st.mu.RLock()
	sn := &Snapshot{
		epoch: st.epoch,
		terms: st.dict.terms(),
		facts: append([]fact(nil), st.facts...),
		dead:  st.dead,
	}
	st.mu.RUnlock()
	return sn
}

// Epoch returns the store epoch the snapshot was pinned at.
func (sn *Snapshot) Epoch() Epoch { return sn.epoch }

// Facts returns the number of live facts in the snapshot.
func (sn *Snapshot) Facts() int { return len(sn.facts) - sn.dead }

// crcWriter tees every written byte into a running CRC.
type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

func (cw *crcWriter) WriteByte(b byte) error {
	if err := cw.w.WriteByte(b); err != nil {
		return err
	}
	cw.crc.Write([]byte{b})
	return nil
}

// Encode writes the snapshot in TQS2 format. It holds no locks.
func (sn *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw, crc: crc32.New(snapshotCRC)}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	fail := func(err error) error { return fmt.Errorf("store: snapshot: %w", err) }

	if _, err := cw.Write(snapshotMagicV2[:]); err != nil {
		return fail(err)
	}
	if err := writeUvarint(uint64(sn.epoch)); err != nil {
		return fail(err)
	}
	if err := writeUvarint(uint64(len(sn.terms) - 1)); err != nil {
		return fail(err)
	}
	for _, t := range sn.terms[1:] {
		if err := cw.WriteByte(byte(t.Kind)); err != nil {
			return fail(err)
		}
		for _, s := range []string{t.Value, t.Datatype, t.Lang} {
			if err := writeString(s); err != nil {
				return fail(err)
			}
		}
	}
	if err := writeUvarint(uint64(len(sn.facts))); err != nil {
		return fail(err)
	}
	for i := range sn.facts {
		f := &sn.facts[i]
		if err := writeUvarint(uint64(f.s)); err != nil {
			return fail(err)
		}
		if err := writeUvarint(uint64(f.p)); err != nil {
			return fail(err)
		}
		if err := writeUvarint(uint64(f.o)); err != nil {
			return fail(err)
		}
		if err := writeVarint(f.iv.Start); err != nil {
			return fail(err)
		}
		if err := writeVarint(f.iv.End); err != nil {
			return fail(err)
		}
		var cb [8]byte
		binary.LittleEndian.PutUint64(cb[:], math.Float64bits(f.conf))
		if _, err := cw.Write(cb[:]); err != nil {
			return fail(err)
		}
		if err := writeUvarint(uint64(f.addedAt)); err != nil {
			return fail(err)
		}
		if err := writeUvarint(uint64(f.removedAt)); err != nil {
			return fail(err)
		}
	}
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], cw.crc.Sum32())
	if _, err := bw.Write(tb[:]); err != nil { // trailer is outside the CRC
		return fail(err)
	}
	return bw.Flush()
}

// Save writes a binary snapshot of the store in the current (TQS2)
// format. The store is pinned for one brief read-locked copy; the
// serialization itself runs without blocking writers.
func (st *Store) Save(w io.Writer) error {
	return st.Checkpoint().Encode(w)
}

// snapReader reads snapshot input while folding every consumed byte into
// a running CRC. It implements io.ByteReader so the binary varint
// readers can consume it directly; reads never run ahead of consumption,
// keeping the CRC aligned with the payload regardless of the underlying
// bufio buffering.
type snapReader struct {
	br  *bufio.Reader
	crc hash.Hash32
}

func (r *snapReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.crc.Write([]byte{b})
	}
	return b, err
}

func (r *snapReader) ReadFull(b []byte) error {
	if _, err := io.ReadFull(r.br, b); err != nil {
		return err
	}
	r.crc.Write(b)
	return nil
}

func (r *snapReader) readString() (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	b := make([]byte, n)
	if err := r.ReadFull(b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *snapReader) readTerm() (rdf.Term, error) {
	var t rdf.Term
	kindB, err := r.ReadByte()
	if err != nil {
		return t, err
	}
	if kindB > byte(rdf.Blank) {
		return t, fmt.Errorf("invalid term kind %d", kindB)
	}
	t.Kind = rdf.TermKind(kindB)
	if t.Value, err = r.readString(); err != nil {
		return t, err
	}
	if t.Datatype, err = r.readString(); err != nil {
		return t, err
	}
	t.Lang, err = r.readString()
	return t, err
}

// preallocCap caps count-driven allocation so a corrupt header cannot
// over-allocate: slices start at min(count, cap) and grow by append,
// which fails on genuine truncation long before memory does.
func preallocCap(count uint64, cap int) int {
	if count < uint64(cap) {
		return int(count)
	}
	return cap
}

// Load reads a binary snapshot into a fresh store. Both snapshot
// versions are accepted: TQS2 restores the exact fact table — ids,
// tombstones and the epoch watermark (Epoch() and the compaction floor
// equal the watermark; per-fact lifespans are preserved, revive history
// below the watermark is not, so DeltaSince below it is conservative,
// matching the documented CompactLog semantics) — and verifies the
// checksum trailer; TQS1 re-Adds the live facts into a fresh epoch
// history. Every structural field is validated (term kinds, id ranges,
// epoch bounds, quad shape), so a corrupt or truncated snapshot yields
// an error, never a malformed store.
func Load(r io.Reader) (*Store, error) {
	sr := &snapReader{br: bufio.NewReaderSize(r, 1<<16), crc: crc32.New(snapshotCRC)}
	var magic [4]byte
	if err := sr.ReadFull(magic[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	switch magic {
	case snapshotMagicV1:
		return loadV1(sr)
	case snapshotMagicV2:
		return loadV2(sr)
	}
	return nil, fmt.Errorf("store: snapshot: bad magic %q", magic[:])
}

// loadV1 reads the legacy live-facts-only format via the public Add
// path, starting a fresh epoch history.
func loadV1(sr *snapReader) (*Store, error) {
	st := New()
	termCount, err := binary.ReadUvarint(sr)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	for i := uint64(0); i < termCount; i++ {
		t, err := sr.readTerm()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: term %d: %w", i, err)
		}
		st.dict.Encode(t)
	}
	factCount, err := binary.ReadUvarint(sr)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	for i := uint64(0); i < factCount; i++ {
		f, err := readFactRecord(sr, st.dict.Len(), false)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		q := rdf.Quad{
			Subject:    st.dict.Decode(f.s),
			Predicate:  st.dict.Decode(f.p),
			Object:     st.dict.Decode(f.o),
			Interval:   f.iv,
			Confidence: f.conf,
		}
		if _, err := st.Add(q); err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
	}
	return st, nil
}

// loadV2 rebuilds the exact fact table — ids, tombstones, lifespans —
// and verifies the checksum trailer.
func loadV2(sr *snapReader) (*Store, error) {
	st := New()
	epoch, err := binary.ReadUvarint(sr)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	st.epoch = Epoch(epoch)
	st.compacted = st.epoch
	termCount, err := binary.ReadUvarint(sr)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	for i := uint64(0); i < termCount; i++ {
		t, err := sr.readTerm()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: term %d: %w", i, err)
		}
		if id := st.dict.Encode(t); uint64(id) != i+1 {
			// A duplicate term collapsed to an earlier code: the snapshot
			// is corrupt and every later term reference would be shifted.
			return nil, fmt.Errorf("store: snapshot: term %d: duplicate of code %d", i, id)
		}
	}
	factCount, err := binary.ReadUvarint(sr)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	st.facts = make([]fact, 0, preallocCap(factCount, 1<<20))
	for i := uint64(0); i < factCount; i++ {
		f, err := readFactRecord(sr, st.dict.Len(), true)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		if err := validateFactEpochs(f, st.epoch); err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		q := rdf.Quad{
			Subject:    st.dict.Decode(f.s),
			Predicate:  st.dict.Decode(f.p),
			Object:     st.dict.Decode(f.o),
			Interval:   f.iv,
			Confidence: f.conf,
		}
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("store: snapshot: fact %d: %w", i, err)
		}
		key := factKey{s: f.s, p: f.p, o: f.o, iv: f.iv}
		if _, ok := st.lookupFactLocked(key); ok {
			return nil, fmt.Errorf("store: snapshot: fact %d: duplicate statement", i)
		}
		id := FactID(len(st.facts))
		st.facts = append(st.facts, f)
		st.insertFactLocked(key, id)
		if len(posting(st.byS, f.s)) == 0 {
			st.nzS++
		}
		if len(posting(st.byP, f.p)) == 0 {
			st.nzP++
		}
		if len(posting(st.byO, f.o)) == 0 {
			st.nzO++
		}
		addPosting(&st.byS, f.s, id)
		addPosting(&st.byP, f.p, id)
		addPosting(&st.byO, f.o, id)
		if f.removedAt != 0 {
			st.dead++
		}
	}
	want := sr.crc.Sum32()
	var tb [4]byte
	if _, err := io.ReadFull(sr.br, tb[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot: checksum trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tb[:]); got != want {
		return nil, fmt.Errorf("store: snapshot: checksum mismatch (have %08x, computed %08x)", got, want)
	}
	return st, nil
}

// readFactRecord decodes one fact record; withEpochs selects the v2
// layout. Term ids are validated against the dictionary size.
func readFactRecord(sr *snapReader, dictLen int, withEpochs bool) (fact, error) {
	var f fact
	readID := func() (TermID, error) {
		v, err := binary.ReadUvarint(sr)
		if err != nil {
			return 0, err
		}
		if v == 0 || v > uint64(dictLen) {
			return 0, fmt.Errorf("term id %d out of range", v)
		}
		return TermID(v), nil
	}
	var err error
	if f.s, err = readID(); err != nil {
		return f, err
	}
	if f.p, err = readID(); err != nil {
		return f, err
	}
	if f.o, err = readID(); err != nil {
		return f, err
	}
	if f.iv.Start, err = binary.ReadVarint(sr); err != nil {
		return f, err
	}
	if f.iv.End, err = binary.ReadVarint(sr); err != nil {
		return f, err
	}
	var cb [8]byte
	if err := sr.ReadFull(cb[:]); err != nil {
		return f, err
	}
	f.conf = math.Float64frombits(binary.LittleEndian.Uint64(cb[:]))
	if !withEpochs {
		return f, nil
	}
	added, err := binary.ReadUvarint(sr)
	if err != nil {
		return f, err
	}
	removed, err := binary.ReadUvarint(sr)
	if err != nil {
		return f, err
	}
	f.addedAt, f.removedAt = Epoch(added), Epoch(removed)
	return f, nil
}

// validateFactEpochs checks a v2 fact's lifespan against the snapshot
// watermark: the fact became live at a real epoch, and if tombstoned,
// strictly after it was added and no later than the watermark.
func validateFactEpochs(f fact, watermark Epoch) error {
	if f.addedAt == 0 || f.addedAt > watermark {
		return fmt.Errorf("addedAt epoch %d outside (0, %d]", f.addedAt, watermark)
	}
	if f.removedAt != 0 && (f.removedAt <= f.addedAt || f.removedAt > watermark) {
		return fmt.Errorf("removedAt epoch %d outside (%d, %d]", f.removedAt, f.addedAt, watermark)
	}
	return nil
}
