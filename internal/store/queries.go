package store

import (
	"sort"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// Temporal query helpers: the classic temporal-database access paths
// layered over the pattern matcher — point-in-time snapshots, coalesced
// per-statement histories, and subject timelines. The Web UI and
// examples use these to browse a utkg along its time axis.

// AsOf returns the facts whose validity interval covers chronon t,
// optionally restricted by subject/predicate/object bindings in pat
// (pat.Time is ignored).
func (st *Store) AsOf(t temporal.Chronon, pat Pattern) []FactID {
	pat.Time = TimeFilter{Kind: TimeIntersects, Interval: temporal.Point(t)}
	return st.MatchIDs(pat)
}

// SnapshotAt materialises the knowledge graph state valid at chronon t.
func (st *Store) SnapshotAt(t temporal.Chronon) rdf.Graph {
	ids := st.AsOf(t, Pattern{})
	g := make(rdf.Graph, 0, len(ids))
	for _, id := range ids {
		g = append(g, st.Fact(id))
	}
	return g
}

// History returns the coalesced temporal element over which the
// statement (s, p, o) holds, merging adjacent and overlapping intervals
// across duplicate extractions. Zero terms act as wildcards, giving the
// combined history of every matching statement.
func (st *Store) History(s, p, o rdf.Term) temporal.Element {
	var ivs []temporal.Interval
	st.Match(Pattern{S: s, P: p, O: o}, func(_ FactID, q rdf.Quad) bool {
		ivs = append(ivs, q.Interval)
		return true
	})
	return temporal.NewElement(ivs...)
}

// TimelineEntry is one fact on a subject's timeline.
type TimelineEntry struct {
	Quad rdf.Quad
	ID   FactID
}

// Timeline returns every fact about subject s ordered by interval start
// (ties by end, then fact id) — the career view the demo's browser
// shows.
func (st *Store) Timeline(s rdf.Term) []TimelineEntry {
	var out []TimelineEntry
	st.Match(Pattern{S: s}, func(id FactID, q rdf.Quad) bool {
		out = append(out, TimelineEntry{Quad: q, ID: id})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Quad.Interval, out[j].Quad.Interval
		if c := a.Compare(b); c != 0 {
			return c < 0
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Span returns the smallest interval covering every live fact in the
// store; ok is false when no live facts exist.
func (st *Store) Span() (temporal.Interval, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var span temporal.Interval
	found := false
	for _, f := range st.facts {
		if f.removedAt != 0 {
			continue
		}
		if !found {
			span, found = f.iv, true
		} else {
			span = span.Span(f.iv)
		}
	}
	return span, found
}
