package tecore_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	tecore "repro"
)

// The incremental engine's contract: after any sequence of fact adds,
// removes, confidence updates and solves, a Session's delta-path Solve
// returns the same Resolution a brand-new session over the same live
// graph computes from scratch. These tests drive randomized mutation
// sequences against both and compare canonicalised results at every
// step, at parallelism 1 and N.

// canonResolution renders the solver-order-independent content of a
// Resolution: statistics (minus runtimes), the kept/removed/inferred
// fact sets with explanations, and the conflict clusters. Atom ids and
// iteration orders legitimately differ between a long-lived incremental
// engine and a fresh grounder, so everything is sorted by statement key.
// confDigits bounds the confidence precision compared; pass a negative
// value to omit confidences entirely (the warm-ADMM test checks them
// separately with a numeric tolerance instead of string rounding).
func canonResolution(r *tecore.Resolution, confDigits int) string {
	var b strings.Builder
	st := r.Stats
	st.Runtime = 0
	st.Solver = ""
	// Component, repair-stage and outcome-stage statistics legitimately
	// differ between the monolithic and component-decomposed paths (and
	// between cold and cached component solves); the MAP state and
	// read-out they describe must not.
	st.Components = nil
	st.Repair = nil
	st.Outcome = nil
	st.Ground = nil
	st.Plan = nil
	fmt.Fprintf(&b, "stats: %+v\n", st)
	section := func(label string, fs []tecore.Fact) {
		lines := make([]string, 0, len(fs))
		for _, f := range fs {
			ex := make([]string, 0, len(f.Explanations))
			for _, e := range f.Explanations {
				ex = append(ex, e.String())
			}
			sort.Strings(ex)
			conf := ""
			if confDigits >= 0 {
				conf = fmt.Sprintf(" conf=%.*f", confDigits, f.Quad.Confidence)
			}
			lines = append(lines, fmt.Sprintf("%s %s%s derived=%v expl=%v",
				label, f.Quad.Fact(), conf, f.Derived, ex))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	section("kept", r.Kept)
	section("removed", r.Removed)
	section("inferred", r.Inferred)
	clusters := make([]string, 0, len(r.Clusters))
	for _, cl := range r.Clusters {
		keys := make([]string, 0, len(cl))
		for _, k := range cl {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		clusters = append(clusters, strings.Join(keys, " | "))
	}
	sort.Strings(clusters)
	for _, c := range clusters {
		b.WriteString("cluster ")
		b.WriteString(c)
		b.WriteByte('\n')
	}
	return b.String()
}

// factPool builds overlapping coaching/playing spells that exercise the
// running example's rule shapes: inference (playsFor ⇒ worksFor) plus a
// hard disjointness constraint with real conflicts.
func factPool(subjects, clubs int) []tecore.Quad {
	var pool []tecore.Quad
	for s := 0; s < subjects; s++ {
		subj := fmt.Sprintf("P%d", s)
		for c := 0; c < clubs; c++ {
			club := fmt.Sprintf("Club%d", c)
			start := int64(2000 + 3*c)
			pool = append(pool,
				tecore.NewQuad(subj, "coach", club, tecore.MustInterval(start, start+4), 0.5+0.1*float64(c%5)),
				tecore.NewQuad(subj, "playsFor", club, tecore.MustInterval(start-10, start-8), 0.6+0.1*float64((c+s)%4)),
			)
		}
	}
	return pool
}

const incrementalProgram = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`

// cascadeProgram chains rules (f2 consumes f1's derived worksFor heads
// through a two-atom body), so incremental solves exercise multi-round
// CloseDelta, the seminaive stratification over several body positions,
// and delete/rederive across derivation chains: removing a playsFor
// fact must cascade through worksFor into livesIn unless an alternative
// derivation survives.
const cascadeProgram = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlaps(t, t') -> quad(x, livesIn, z, intersect(t, t')) w = 1.6
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`

// cascadePool adds the locatedIn layer f2 joins against.
func cascadePool(subjects, clubs int) []tecore.Quad {
	pool := factPool(subjects, clubs)
	for c := 0; c < clubs; c++ {
		club := fmt.Sprintf("Club%d", c)
		city := fmt.Sprintf("City%d", c%2)
		pool = append(pool,
			tecore.NewQuad(club, "locatedIn", city, tecore.MustInterval(1980, 2020), 0.9))
	}
	return pool
}

// runIncrementalVsFresh drives nSteps random mutations + solves and
// fails on the first divergence between the incremental session and a
// from-scratch solve over the same live graph.
func runIncrementalVsFresh(t *testing.T, pool []tecore.Quad, opts tecore.SolveOptions, seed int64, nSteps int) {
	runIncrementalVsFreshProgram(t, incrementalProgram, pool, opts, seed, nSteps, 17)
}

func runIncrementalVsFreshAt(t *testing.T, pool []tecore.Quad, opts tecore.SolveOptions, seed int64, nSteps int, confDigits int) {
	runIncrementalVsFreshProgram(t, incrementalProgram, pool, opts, seed, nSteps, confDigits)
}

func runIncrementalVsFreshProgram(t *testing.T, program string, pool []tecore.Quad, opts tecore.SolveOptions, seed int64, nSteps int, confDigits int) {
	t.Helper()
	runTwoWaysProgram(t, program, pool, opts, opts, seed, nSteps, confDigits)
}

// runTwoWaysProgram drives nSteps random mutations against a long-lived
// incremental session solved with incOpts and, at every step, a fresh
// from-scratch session over the same live graph solved with freshOpts,
// failing on the first divergence. With incOpts == freshOpts this is
// the incremental-vs-fresh contract; with incOpts component-decomposed
// and freshOpts monolithic it is the component-equivalence contract.
func runTwoWaysProgram(t *testing.T, program string, pool []tecore.Quad, incOpts, freshOpts tecore.SolveOptions, seed int64, nSteps int, confDigits int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inc := tecore.NewSession()
	if err := inc.LoadProgramText(program); err != nil {
		t.Fatal(err)
	}
	live := make(map[int]bool)
	// Start from a third of the pool.
	for i := range pool {
		if i%3 == 0 {
			if err := inc.AddFact(pool[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = true
		}
	}
	for step := 0; step < nSteps; step++ {
		// Mutate: a couple of random adds/removes/updates per step.
		for m := 0; m < 1+rng.Intn(3); m++ {
			i := rng.Intn(len(pool))
			switch op := rng.Intn(4); {
			case op < 2: // add (possibly re-add / revive)
				q := pool[i]
				if rng.Intn(2) == 0 {
					q.Confidence = 0.5 + 0.4*rng.Float64() // confidence update path
				}
				if err := inc.AddFact(q); err != nil {
					t.Fatal(err)
				}
				live[i] = true
			case op < 3: // remove (possibly a no-op)
				inc.RemoveFact(pool[i])
				delete(live, i)
			default: // remove + immediate revive in the same window
				if live[i] {
					inc.RemoveFact(pool[i])
					if err := inc.AddFact(pool[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}

		incRes, err := inc.Solve(incOpts)
		if err != nil {
			t.Fatalf("step %d: incremental solve: %v", step, err)
		}
		if step > 0 && !incRes.Incremental {
			t.Fatalf("step %d: solve did not take the delta path", step)
		}

		fresh := tecore.NewSession()
		if err := fresh.LoadGraph(inc.Store().Graph()); err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadProgramText(program); err != nil {
			t.Fatal(err)
		}
		freshRes, err := fresh.Solve(freshOpts)
		if err != nil {
			t.Fatalf("step %d: fresh solve: %v", step, err)
		}

		got, want := canonResolution(incRes, confDigits), canonResolution(freshRes, confDigits)
		if got != want {
			t.Fatalf("step %d: incremental result diverged from from-scratch solve\nincremental:\n%s\nfresh:\n%s", step, got, want)
		}
		if confDigits < 0 {
			if err := confsClose(incRes, freshRes, 5e-3); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

// confsClose compares the two resolutions' fact confidences by
// statement key within tol.
func confsClose(a, b *tecore.Resolution, tol float64) error {
	collect := func(r *tecore.Resolution) map[string]float64 {
		m := make(map[string]float64)
		for _, fs := range [][]tecore.Fact{r.Kept, r.Removed, r.Inferred} {
			for _, f := range fs {
				m[f.Quad.Fact().String()] = f.Quad.Confidence
			}
		}
		return m
	}
	am, bm := collect(a), collect(b)
	for k, av := range am {
		bv, ok := bm[k]
		if !ok {
			return fmt.Errorf("fact %s missing from fresh result", k)
		}
		if d := av - bv; d > tol || d < -tol {
			return fmt.Errorf("fact %s confidence differs: %g vs %g", k, av, bv)
		}
	}
	return nil
}

func TestIncrementalMatchesFreshMLNExact(t *testing.T) {
	// Small pool: the ground network stays within the exact MaxSAT
	// engine, where the warm-started search provably returns the same
	// optimum as a cold one.
	pool := factPool(2, 3)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			runIncrementalVsFresh(t, pool,
				tecore.SolveOptions{Solver: tecore.SolverMLN, Parallelism: par}, 7, 12)
		})
	}
}

func TestIncrementalMatchesFreshMLNLocalSearchCold(t *testing.T) {
	// Larger pool: the solver takes the stochastic local-search path.
	// With ColdStart the incremental side must hand it a byte-identical
	// canonical problem, making even the random walk reproduce exactly.
	pool := factPool(4, 6)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			runIncrementalVsFresh(t, pool,
				tecore.SolveOptions{Solver: tecore.SolverMLN, Parallelism: par, ColdStart: true}, 11, 8)
		})
	}
}

func TestIncrementalMatchesFreshPSLCold(t *testing.T) {
	pool := factPool(3, 4)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			runIncrementalVsFresh(t, pool,
				tecore.SolveOptions{Solver: tecore.SolverPSL, Parallelism: par, ColdStart: true}, 13, 8)
		})
	}
}

func TestIncrementalMatchesFreshCascade(t *testing.T) {
	// Rule cascades: f2 consumes f1's derived heads via a two-atom body.
	// Small pool keeps the network in the exact engine, so warm starts
	// stay provably identical; mutations on playsFor facts force the
	// delete/rederive pass to walk derivation chains.
	pool := cascadePool(2, 2)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("mln/parallel=%d", par), func(t *testing.T) {
			runIncrementalVsFreshProgram(t, cascadeProgram, pool,
				tecore.SolveOptions{Solver: tecore.SolverMLN, Parallelism: par}, 23, 12, 17)
		})
	}
	// Larger cascade through the stochastic local-search path, cold.
	t.Run("mln/local-cold", func(t *testing.T) {
		runIncrementalVsFreshProgram(t, cascadeProgram, cascadePool(4, 5),
			tecore.SolveOptions{Solver: tecore.SolverMLN, ColdStart: true}, 29, 8, 17)
	})
	t.Run("psl/cold", func(t *testing.T) {
		runIncrementalVsFreshProgram(t, cascadeProgram, cascadePool(3, 3),
			tecore.SolveOptions{Solver: tecore.SolverPSL, ColdStart: true}, 31, 8, 17)
	})
}

func TestIncrementalMatchesFreshPSLWarm(t *testing.T) {
	// Warm-started ADMM (restarted from the previous solve's primal and
	// dual iterates) converges to the same unique optimum of the
	// strictly convex HL-MRF, but only to within the residual tolerance
	// Eps = 1e-4, so confidences are compared numerically at 5e-3.
	// Everything discrete — kept/removed/inferred sets, clusters,
	// statistics — must still match exactly.
	pool := factPool(3, 4)
	runIncrementalVsFreshAt(t, pool,
		tecore.SolveOptions{Solver: tecore.SolverPSL}, 17, 8, -1)
}
